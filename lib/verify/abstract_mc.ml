(* The backend-generic forward abstract interpreter over machine code
   (the tentpole of the static layer).

   Everything here is parameterised by {!Machine.Backend_sig.S} — the
   instructions are consumed through {!Machine.Backend.view_of},
   {!Machine.Backend.control_of}, {!Machine.Backend.flag_effect} and the
   {!Machine.Backend.reads}/{!Machine.Backend.writes} queries, so no
   per-ISA constructor appears below and a third back-end needs no
   change to this file.

   Four composable abstract domains run over the fixpoint:

   - {b register definedness / scratch discipline} — a may/must
     written-register bitmask; it yields the read-before-write check on
     the temporary file and the scratch-clobber check (writes to the
     reserved scratches must be justified by the IR's own use of the
     reserved virtual registers);
   - {b flags definedness} — whether the condition codes may still be
     undefined at a conditional branch, feeding guard reachability on
     the flags-style back-ends;
   - {b condition values} — the flagless analogue: a per-register
     lattice tracking "holds the boolean outcome of comparison (kind,
     cond)" with clobber interaction, so a fused branch reading a
     materialised comparison can be decoded back to the guard that
     produced it and a write landing between the materialisation and
     its branch is caught statically;
   - {b frame/stack effect} — per-path operand-stack depth and exit
     summaries ({!summarize}), statically recomputing the frame-effect
     component that {!Symexec_mc} derives symbolically, and cross-checked
     against it ({!crosscheck}).

   The flags domain and the condition-value domain are two instances of
   one guard-provenance analysis: both answer "which comparison kind
   and condition does this conditional branch observe", selected per
   instruction by the back-end's view ([V_jcc] consumes the flags
   register, [V_cmp_branch] consumes a general register whose
   provenance the condition-value domain supplies).  [expected_branches]
   is therefore shared unchanged across all back-end styles.

   On top of the fixpoint, [check_unit] statically re-derives from the
   front-end IR what the lowering must have emitted (conditional-branch
   condition-code sequences, stop markers, frame stores, constant slot
   indices, scratch usage) and flags any machine-side divergence: an
   IR-vs-machine consistency oracle that needs no execution and kills
   every machine-layer mutation operator. *)

module MC = Machine.Machine_code
module BV = Machine.Backend_sig
module B = Machine.Backend
module Ir = Jit.Ir
module EC = Interpreter.Exit_condition

(* --- reachability over the control-flow graph --- *)

type event =
  | Ev_undefined_label of int * string
      (** instruction [i] branches to a label with no definition *)
  | Ev_falloff of int  (** control falls past the end from instruction [i] *)

type reach = { reachable : bool array; events : event list }

(* Breadth-first from the entry, branch target explored before the
   fall-through — the discovery order [Machine_lint] findings rely on. *)
let reach (p : MC.program) : reach =
  let n = Array.length p in
  let labels = MC.label_map p in
  let reachable = Array.make (max n 1) false in
  let events = ref [] in
  let work = Queue.create () in
  let push ~from i =
    if i >= n then events := Ev_falloff from :: !events
    else if not reachable.(i) then begin
      reachable.(i) <- true;
      Queue.add i work
    end
  in
  let target i l =
    match Hashtbl.find_opt labels l with
    | Some t -> Some t
    | None ->
        events := Ev_undefined_label (i, l) :: !events;
        None
  in
  if n > 0 then begin
    reachable.(0) <- true;
    Queue.add 0 work
  end;
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    match B.control_of p.(i) with
    | B.C_exit _ -> ()
    | B.C_jump l -> (
        match target i l with Some t -> push ~from:i t | None -> ())
    | B.C_branch (_, l) ->
        (match target i l with Some t -> push ~from:i t | None -> ());
        push ~from:i (i + 1)
    | B.C_fall -> push ~from:i (i + 1)
  done;
  { reachable; events = List.rev !events }

(* --- the dataflow fixpoint --- *)

(* The kind of comparison a guard observes — the shared vocabulary of
   the guard-provenance analysis, for both flag setters (flags
   back-ends) and condition-value materialisations (flagless
   back-ends). *)
type flag_kind = K_result | K_cmp | K_tag | K_fcmp

let flag_kind_name = function
  | K_result -> "result"
  | K_cmp -> "compare"
  | K_tag -> "tag-test"
  | K_fcmp -> "float-compare"

(* The condition-value lattice for one register:

     (absent = never materialised, the bottom)
                    |
        Cv_cond (kind, base)   — holds 1 iff comparison [kind] under
                    |            [base] held when it was materialised
              Cv_clobbered     — overwritten, or different provenance
                                 on different paths (the top)

   [base] is the condition such that the register equals [1] exactly
   when [(kind, base)] holds, so a fused branch [b<cc> r, #imm] decodes
   back to the originating guard: against [#1], [Eq] observes [base]
   and [Ne] its negation; against [#0] the other way around. *)
type cv = Cv_cond of flag_kind * MC.cond | Cv_clobbered

(* The provenance a materialising view establishes for its destination.
   [V_set_tag] computes the tag bit, which is [1] exactly when the
   simulator's tag-test discipline makes [Eq] hold; [V_set_ovf] is the
   overflow bit of the latest result, [Vs]. *)
let cv_of_set_view : BV.view -> (MC.reg * cv) option = function
  | BV.V_set_cmp (c, rd, _, _) -> Some (rd, Cv_cond (K_cmp, c))
  | BV.V_set_tag (rd, _) -> Some (rd, Cv_cond (K_tag, MC.Eq))
  | BV.V_set_ovf (rd, _) -> Some (rd, Cv_cond (K_result, MC.Vs))
  | BV.V_set_fcmp (c, rd, _, _) -> Some (rd, Cv_cond (K_fcmp, c))
  | _ -> None

(* Decode the guard a fused branch observes, given the provenance of
   the register it reads.  Without provenance the branch is a direct
   fused compare of a computed value, i.e. a [K_cmp] guard. *)
let decode_fused_branch (prov : cv option) (c : MC.cond) (o : MC.operand) :
    flag_kind option * MC.cond =
  match (prov, o, c) with
  | Some (Cv_cond (k, base)), MC.I 1, MC.Eq | Some (Cv_cond (k, base)), MC.I 0, MC.Ne
    ->
      (Some k, base)
  | Some (Cv_cond (k, base)), MC.I 1, MC.Ne | Some (Cv_cond (k, base)), MC.I 0, MC.Eq
    ->
      (Some k, MC.flip_cond base)
  | _ -> (Some K_cmp, c)

(* The product domain at one program point: registers as a pair of
   bitmasks (may-written ⊇ must-written, so ⊥ would be may=∅/must=all
   and ⊤ may=all/must=∅; the register file fits one native int), flags
   as one boolean ("may still be undefined"), condition values as a
   sorted association list over the (few) registers that ever hold a
   materialised comparison.  [join] is pointwise. *)
type astate = { may : int; must : int; fundef : bool; cvals : (MC.reg * cv) list }

let entry_state = { may = 0; must = 0; fundef = true; cvals = [] }

(* Pointwise join of two sorted provenance maps: an untracked register
   stays whatever the other path says (absent is the bottom), agreeing
   provenances keep, disagreements go to the top. *)
let rec join_cvals a b =
  match (a, b) with
  | [], m | m, [] -> m
  | (ra, va) :: ta, (rb, _) :: _ when ra < rb -> (ra, va) :: join_cvals ta b
  | (ra, _) :: _, (rb, vb) :: tb when rb < ra -> (rb, vb) :: join_cvals a tb
  | (r, va) :: ta, (_, vb) :: tb ->
      (r, (if va = vb then va else Cv_clobbered)) :: join_cvals ta tb

let cvals_set r v m =
  let rec go = function
    | [] -> [ (r, v) ]
    | (r', _) :: t when r' = r -> (r, v) :: t
    | (r', v') :: t when r' > r -> (r, v) :: (r', v') :: t
    | h :: t -> h :: go t
  in
  go m

let cvals_find r m = List.assoc_opt r m

let join a b =
  {
    may = a.may lor b.may;
    must = a.must land b.must;
    fundef = a.fundef || b.fundef;
    cvals = join_cvals a.cvals b.cvals;
  }

let transfer (i : MC.instr) (s : astate) : astate =
  let writes = B.writes i in
  let wmask = List.fold_left (fun m r -> m lor (1 lsl r)) 0 writes in
  let cvals =
    match Option.bind (B.view_of i) cv_of_set_view with
    | Some (rd, v) -> cvals_set rd v s.cvals
    | None ->
        (* a write to a register holding a materialised comparison
           destroys it; untracked registers stay untracked, so direct
           fused compares of freshly computed values raise nothing *)
        List.fold_left
          (fun m w ->
            match cvals_find w m with
            | Some _ -> cvals_set w Cv_clobbered m
            | None -> m)
          s.cvals writes
  in
  {
    may = s.may lor wmask;
    must = s.must lor wmask;
    fundef = (match B.flag_effect i with B.Preserves -> s.fundef | _ -> false);
    cvals;
  }

type fix = { fx_reach : reach; fx_in : astate option array }

(* Standard worklist iteration to the least fixpoint; the domain has
   finite height (2 x num_regs + 1), so this terminates. *)
let fixpoint (p : MC.program) : fix =
  let n = Array.length p in
  let r = reach p in
  let labels = MC.label_map p in
  let fx_in = Array.make (max n 1) None in
  let work = Queue.create () in
  let feed i s =
    if i < n then begin
      let s' =
        match fx_in.(i) with None -> s | Some old -> join old s
      in
      if fx_in.(i) <> Some s' then begin
        fx_in.(i) <- Some s';
        Queue.add i work
      end
    end
  in
  if n > 0 then feed 0 entry_state;
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    match fx_in.(i) with
    | None -> ()
    | Some s -> (
        let s' = transfer p.(i) s in
        match B.control_of p.(i) with
        | B.C_exit _ -> ()
        | B.C_jump l -> (
            match Hashtbl.find_opt labels l with
            | Some t -> feed t s'
            | None -> ())
        | B.C_branch (_, l) ->
            (match Hashtbl.find_opt labels l with
            | Some t -> feed t s'
            | None -> ());
            feed (i + 1) s'
        | B.C_fall -> feed (i + 1) s')
  done;
  { fx_reach = r; fx_in }

(* --- IR-derived expectations ---

   The lowering table ({!Jit.Codegen.Make}) is deterministic per IR
   instruction, so the IR statically determines the multisets and
   sequences the machine side must exhibit, whichever back-end emitted
   it.  Divergence means the machine artefact was altered after (or
   during) lowering. *)

(* Conditional branches each IR instruction lowers to, in emission
   order, as (guard kind, condition) — back-end-independent: a flags
   back-end realises the pair as flag-setter + [jcc], a flagless one as
   materialisation + fused branch, and [observed_branches] decodes both
   onto this same vocabulary. *)
let expected_branches (ir : Ir.ir list) : (flag_kind * MC.cond) list =
  List.concat_map
    (fun (i : Ir.ir) ->
      match i with
      | Ir.I_check_small_int _ -> [ (K_tag, MC.Ne) ]
      | Ir.I_check_not_small_int _ -> [ (K_tag, MC.Eq) ]
      | Ir.I_check_class _ -> [ (K_cmp, MC.Ne) ]
      | Ir.I_check_pointers _ -> [ (K_tag, MC.Eq); (K_cmp, MC.Gt) ]
      | Ir.I_check_bytes _ -> [ (K_tag, MC.Eq); (K_cmp, MC.Ne) ]
      | Ir.I_check_indexable _ ->
          [ (K_tag, MC.Eq); (K_cmp, MC.Lt); (K_cmp, MC.Gt) ]
      | Ir.I_jump_overflow _ -> [ (K_result, MC.Vs) ]
      | Ir.I_check_range _ -> [ (K_cmp, MC.Gt); (K_cmp, MC.Lt) ]
      | Ir.I_cmp_jump (c, _, _, _) -> [ (K_cmp, c) ]
      | Ir.I_bool_result (c, _, _, _) -> [ (K_cmp, c) ]
      | Ir.I_fcmp_jump (c, _, _, _) -> [ (K_fcmp, c) ]
      | Ir.I_fbool_result (c, _, _, _) -> [ (K_fcmp, c) ]
      | _ -> [])
    ir

(* The same walk over the emitted program: the guard each conditional
   branch observes.  A [V_jcc] observes the dominating flag setter; a
   [V_cmp_branch] observes the provenance of the register it reads,
   decoded through {!decode_fused_branch}.  Lowering is linear, so the
   linear last-setter / last-materialisation is exact. *)
let observed_branches (p : MC.program) : (flag_kind option * MC.cond) list =
  let last = ref None in
  let prov : (MC.reg, cv) Hashtbl.t = Hashtbl.create 4 in
  let out = ref [] in
  Array.iter
    (fun i ->
      (match B.flag_effect i with
      | B.Sets_result -> last := Some K_result
      | B.Sets_cmp -> last := Some K_cmp
      | B.Sets_tag -> last := Some K_tag
      | B.Sets_fcmp -> last := Some K_fcmp
      | B.Preserves -> ());
      (match B.view_of i with
      | Some (BV.V_jcc (c, _)) -> out := (!last, c) :: !out
      | Some (BV.V_cmp_branch (c, rs, o, _)) ->
          out := decode_fused_branch (Hashtbl.find_opt prov rs) c o :: !out
      | Some v -> (
          match cv_of_set_view v with
          | Some (rd, cvv) -> Hashtbl.replace prov rd cvv
          | None -> List.iter (Hashtbl.remove prov) (B.writes i))
      | None -> List.iter (Hashtbl.remove prov) (B.writes i)))
    p;
  List.rev !out

let stop_markers_ir ir =
  List.sort compare
    (List.filter_map (function Ir.I_stop n -> Some n | _ -> None) ir)

let stop_markers_mc (p : MC.program) =
  List.sort compare
    (List.filter_map
       (fun i ->
         match B.control_of i with
         | B.C_exit (B.E_stop n) -> Some n
         | _ -> None)
       (Array.to_list p))

let frame_stores_ir ir =
  List.sort compare
    (List.filter_map (function Ir.I_store_temp (n, _) -> Some n | _ -> None) ir)

let frame_stores_mc (p : MC.program) =
  List.sort compare
    (List.filter_map
       (function MC.Store_temp (n, _) -> Some n | _ -> None)
       (Array.to_list p))

(* Constant heap-cell indices, tagged by access family; register-held
   indices are not statically comparable and are skipped on both sides
   symmetrically. *)
type slot_kind = SL_load_slot | SL_store_slot | SL_load_byte | SL_store_byte

let slot_kind_name = function
  | SL_load_slot -> "slot load"
  | SL_store_slot -> "slot store"
  | SL_load_byte -> "byte load"
  | SL_store_byte -> "byte store"

let slot_indices_ir ir =
  List.sort compare
    (List.filter_map
       (fun (i : Ir.ir) ->
         match i with
         | Ir.I_load_slot (_, _, Ir.C c) -> Some (SL_load_slot, c)
         | Ir.I_store_slot (_, Ir.C c, _) -> Some (SL_store_slot, c)
         | Ir.I_load_byte (_, _, Ir.C c) -> Some (SL_load_byte, c)
         | Ir.I_store_byte (_, Ir.C c, _) -> Some (SL_store_byte, c)
         | _ -> None)
       ir)

let slot_indices_mc (p : MC.program) =
  List.sort compare
    (List.filter_map
       (function
         | MC.Load_slot (_, _, MC.I c) -> Some (SL_load_slot, c)
         | MC.Store_slot (_, MC.I c, _) -> Some (SL_store_slot, c)
         | MC.Load_byte (_, _, MC.I c) -> Some (SL_load_byte, c)
         | MC.Store_byte (_, MC.I c, _) -> Some (SL_store_byte, c)
         | _ -> None)
       (Array.to_list p))

(* --- the consistency checks --- *)

let check_unit ~subject ~compiler ~arch ~(backend : B.t) ~(ir : Ir.ir list)
    (p : MC.program) : Finding.t list =
  let module BE = (val backend) in
  let findings = ref [] in
  let once = Hashtbl.create 8 in
  let add key family cause detail =
    if not (Hashtbl.mem once key) then begin
      Hashtbl.replace once key ();
      findings :=
        Finding.v ~pass:Finding.Abstract_interp ~subject ~compiler ~arch
          ~family ~cause detail
        :: !findings
    end
  in
  let fx = fixpoint p in
  let quote i = Printf.sprintf "%d: %s" i (Machine.Disasm.instr p.(i)) in
  (* 1. conditional branches carry the condition codes the IR's guards
     demand, over the right flag setter *)
  let expected = expected_branches ir and observed = observed_branches p in
  let ne = List.length expected and no = List.length observed in
  if ne <> no then
    add "cond-count" Finding.Behavioural_difference "mc-branch-cond-mismatch"
      (Printf.sprintf
         "the lowering emits %d conditional branches where the IR demands %d"
         no ne)
  else
    List.iteri
      (fun j ((ek, ec), (ok, oc)) ->
        let kind_ok = match ok with Some k -> k = ek | None -> false in
        if (not kind_ok) || ec <> oc then
          add
            (Printf.sprintf "cond-%d" j)
            Finding.Behavioural_difference "mc-branch-cond-mismatch"
            (Printf.sprintf
               "conditional branch %d tests %s under %s flags where the IR \
                demands %s under %s flags"
               j
               (MC.show_cond oc)
               (match ok with
               | Some k -> flag_kind_name k
               | None -> "undefined")
               (MC.show_cond ec) (flag_kind_name ek)))
      (List.combine expected observed);
  (* 2. stop markers: the breakpoint ids are exactly the IR's [I_stop]s *)
  let se = stop_markers_ir ir and so = stop_markers_mc p in
  if se <> so then
    add "stops" Finding.Behavioural_difference "mc-stop-marker-mismatch"
      (Printf.sprintf
         "the program's stop markers [%s] differ from the IR's [%s]"
         (String.concat "; " (List.map string_of_int so))
         (String.concat "; " (List.map string_of_int se)));
  (* 3. frame effect: the stored frame-temp indices match the IR *)
  let fe = frame_stores_ir ir and fo = frame_stores_mc p in
  if fe <> fo then
    add "frame-stores" Finding.Behavioural_difference "mc-frame-store-mismatch"
      (Printf.sprintf
         "the program stores frame temps [%s] where the IR stores [%s]"
         (String.concat "; " (List.map string_of_int fo))
         (String.concat "; " (List.map string_of_int fe)));
  (* 4. constant heap-cell indices match the IR *)
  let ie = slot_indices_ir ir and io = slot_indices_mc p in
  if ie <> io then begin
    let render l =
      String.concat "; "
        (List.map (fun (k, c) -> Printf.sprintf "%s #%d" (slot_kind_name k) c) l)
    in
    add "slots" Finding.Behavioural_difference "mc-slot-index-mismatch"
      (Printf.sprintf
         "the program's constant heap indices [%s] differ from the IR's [%s]"
         (render io) (render ie))
  end;
  (* 5. scratch discipline: the reserved scratches (1 and 2) are only
     written when the IR itself uses the corresponding reserved virtual
     registers; scratch 0 and the class register are free materialisation
     scratches *)
  let reserved =
    match BE.scratch_regs with _ :: rest -> rest | [] -> []
  in
  let ir_defs =
    List.concat_map (fun i -> fst (Ir.def_use i)) ir
  in
  let justified k = List.mem (101 + k) ir_defs in
  Array.iteri
    (fun i instr ->
      if fx.fx_reach.reachable.(i) then
        List.iter
          (fun w ->
            match
              List.find_index (fun r -> r = w) reserved
            with
            | Some k when not (justified k) ->
                add
                  (Printf.sprintf "scratch-%d" i)
                  Finding.Behavioural_difference "mc-unexpected-scratch-clobber"
                  (Printf.sprintf
                     "%s writes reserved scratch %s, which the IR never \
                      allocates"
                     (quote i) (BE.reg_name w))
            | _ -> ())
          (B.writes instr))
    p;
  (* 6. temporary-file liveness: no reachable read of a temporary the
     fixpoint proves is never written first (the IR layer guarantees
     def-before-use, so the lowering must too) *)
  Array.iteri
    (fun i instr ->
      if fx.fx_reach.reachable.(i) then
        match fx.fx_in.(i) with
        | None -> ()
        | Some s ->
            List.iter
              (fun r ->
                if r >= BE.temp_base && s.may land (1 lsl r) = 0 then
                  add
                    (Printf.sprintf "rbw-%d-%d" i r)
                    Finding.Behavioural_difference "mc-read-before-write"
                    (Printf.sprintf
                       "%s reads %s, which no path has written" (quote i)
                       (BE.reg_name r)))
              (B.reads instr))
    p;
  (* 7. guard reachability, flags style: a branch consuming the flags
     register must not observe condition codes that may still be
     undefined.  Fused branches ([V_cmp_branch]) consume no flags — the
     condition-value domain covers them below. *)
  Array.iteri
    (fun i instr ->
      if fx.fx_reach.reachable.(i) then
        match B.view_of instr with
        | Some (BV.V_jcc _) -> (
            match fx.fx_in.(i) with
            | Some s when s.fundef ->
                add
                  (Printf.sprintf "flags-%d" i)
                  Finding.Structural "branch-on-undefined-flags"
                  (Printf.sprintf
                     "%s branches on condition codes no reaching path has set"
                     (quote i))
            | _ -> ())
        | _ -> ())
    p;
  (* 8. guard reachability, condition-value style: a fused branch must
     not read a register whose materialised comparison some reaching
     path has overwritten (or whose provenance differs across paths).
     The never-materialised case is the read-before-write finding of
     check 6, since the condition register sits above [temp_base]. *)
  Array.iteri
    (fun i instr ->
      if fx.fx_reach.reachable.(i) then
        match B.view_of instr with
        | Some (BV.V_cmp_branch (_, rs, _, _)) -> (
            match fx.fx_in.(i) with
            | Some s when cvals_find rs s.cvals = Some Cv_clobbered ->
                add
                  (Printf.sprintf "cv-clobber-%d" i)
                  Finding.Structural "cmp-result-clobbered-before-branch"
                  (Printf.sprintf
                     "%s branches on %s, whose materialised comparison a \
                      reaching path overwrites before the branch"
                     (quote i) (BE.reg_name rs))
            | _ -> ())
        | _ -> ())
    p;
  List.rev !findings

(* --- abstract per-path frame-effect summaries --- *)

type aexit =
  | A_return
  | A_stop of int
  | A_send of string * int
  | A_segfault  (** operand-stack underflow *)
  | A_undefined of string  (** branch to an undefined label *)
  | A_falloff

type apath = { aexit : aexit; depth : int (* operand-stack depth at exit *) }
type summary = { apaths : apath list; atruncated : bool }

let aexit_name = function
  | A_return -> "return"
  | A_stop n -> Printf.sprintf "stop %d" n
  | A_send (s, n) -> Printf.sprintf "send %s/%d" s n
  | A_segfault -> "segfault"
  | A_undefined l -> Printf.sprintf "undefined label %S" l
  | A_falloff -> "falloff"

(* Enumerate the structural paths.  The operand-stack depth is exact
   per path (pushes and pops are not data-dependent); the path set
   over-approximates the feasible set, which is the soundness direction
   the cross-check needs. *)
let summarize ?(max_paths = 256) ?(max_steps = 2048) (p : MC.program) : summary
    =
  let n = Array.length p in
  let labels = MC.label_map p in
  let paths = ref [] and count = ref 0 and truncated = ref false in
  let finish aexit depth =
    if !count >= max_paths then truncated := true
    else begin
      incr count;
      paths := { aexit; depth } :: !paths
    end
  in
  let rec go pc depth steps =
    if !count >= max_paths then truncated := true
    else if steps > max_steps then truncated := true
    else if pc >= n then finish A_falloff depth
    else
      match B.control_of p.(pc) with
      | B.C_exit B.E_return -> finish A_return depth
      | B.C_exit (B.E_stop m) -> finish (A_stop m) depth
      | B.C_exit (B.E_send info) ->
          finish (A_send (EC.selector_name info.MC.selector, info.MC.num_args))
            depth
      | B.C_jump l -> (
          match Hashtbl.find_opt labels l with
          | Some t -> go t depth (steps + 1)
          | None -> finish (A_undefined l) depth)
      | B.C_branch (_, l) ->
          (match Hashtbl.find_opt labels l with
          | Some t -> go t depth (steps + 1)
          | None -> finish (A_undefined l) depth);
          go (pc + 1) depth (steps + 1)
      | B.C_fall -> (
          match B.view_of p.(pc) with
          | Some (BV.V_push _) -> go (pc + 1) (depth + 1) (steps + 1)
          | Some (BV.V_pop _) ->
              if depth = 0 then finish A_segfault 0
              else go (pc + 1) (depth - 1) (steps + 1)
          | _ -> go (pc + 1) depth (steps + 1))
  in
  if n > 0 then go 0 0 0 else finish A_falloff 0;
  { apaths = List.sort_uniq compare !paths; atruncated = !truncated }

(* --- cross-check against the symbolic executor ---

   Soundness, statically validated: every clean exit [Symexec_mc]
   derives symbolically (return / stop / trampoline call, with its
   operand-stack depth) must appear among the abstract structural
   paths.  Trap exits end mid-instruction and are deliberately outside
   the abstract frame-effect language, so they carry no claim. *)

let crosscheck ~subject ~compiler ~arch ~accessor_gaps (p : MC.program)
    (s : summary) : Finding.t list =
  if s.atruncated then []
  else
    let r =
      Symexec_mc.execute ~accessor_gaps
        ~subst:(fun _ -> None)
        ~init_regs:[] ~init_temps:[||] p
    in
    if r.Symexec_mc.truncated then []
    else
      let covered aexit depth =
        List.exists (fun a -> a.aexit = aexit && a.depth = depth) s.apaths
      in
      let findings = ref [] in
      let once = Hashtbl.create 4 in
      List.iter
        (fun (path : Symexec_mc.path) ->
          let claim =
            match path.exit_ with
            | Symexec_mc.M_ret _ -> Some A_return
            | Symexec_mc.M_stop m -> Some (A_stop m)
            | Symexec_mc.M_send info ->
                Some
                  (A_send
                     (EC.selector_name info.MC.selector, info.MC.num_args))
            | Symexec_mc.M_segfault | Symexec_mc.M_sim_error _
            | Symexec_mc.M_stuck _ ->
                None
          in
          match claim with
          | None -> ()
          | Some aexit ->
              let depth = List.length path.Symexec_mc.stack in
              if not (covered aexit depth) then begin
                let key = (aexit, depth) in
                if not (Hashtbl.mem once key) then begin
                  Hashtbl.replace once key ();
                  findings :=
                    Finding.v ~pass:Finding.Abstract_interp ~subject ~compiler
                      ~arch ~family:Finding.Structural
                      ~cause:"abstract-symexec-exit-escape"
                      (Printf.sprintf
                         "the symbolic executor exits via %s at stack depth \
                          %d, which the abstract summary does not cover"
                         (aexit_name aexit) depth)
                    :: !findings
                end
              end)
        r.Symexec_mc.paths;
      List.rev !findings
