(* The static verifier suite.

   Five zero-execution passes over the testing pipeline's artifacts:

   1. {!Bytecode_verifier} — abstract interpretation of byte-code
      (stack balance, branch targets, index bounds, dead code);
   2. {!Ir_verifier} — dataflow checks over cogit IR (def-before-use,
      single assignment before allocation, spill read-before-write,
      trampoline calling convention);
   3. {!Machine_lint} — reachability and register-accessor coverage on
      lowered machine code, any back-end behind {!Machine.Backend_sig};
   4. {!Abstract_mc} — the backend-generic abstract interpreter:
      IR-vs-machine consistency, scratch/liveness/flags domains,
      frame-effect summaries cross-checked against {!Symexec_mc} and
      differenced per ISA pair ({!Frame_diff.differ_arches});
   5. {!Frame_diff} — static cross-compiler differencing of guard and
      frame-effect summaries.

   [verify_bytecode_unit] / [verify_native_unit] bundle passes 1-4 for
   one compilation unit; [Frame_diff.differ_*] is pass 5;
   [verify_all] sweeps the whole test universe and aggregates a
   {!type:report}; [abstract_all] sweeps the machine layer alone and
   aggregates an {!type:abstract_report}. *)

module Finding = Finding
module Bytecode_verifier = Bytecode_verifier
module Ir_verifier = Ir_verifier
module Machine_lint = Machine_lint
module Abstract_mc = Abstract_mc
module Frame_diff = Frame_diff
module Symexec_mc = Symexec_mc
module Translation_validator = Translation_validator
module Op = Bytecodes.Opcode
module Ir = Jit.Ir

let arch_name = Jit.Codegen.arch_name

(* Canonical unit parameters, mirroring the differential runner's
   Listing-3 schema: a literal frame of distinct tagged integers and one
   setup push per operand the instruction consumes. *)
let default_literals = Array.init 16 (fun i -> Ir.tagged_int (101 + i))

let default_stack_setup (op : Op.t) : int list =
  List.init (Op.min_operands op) (fun i -> Ir.tagged_int (i + 1))

let has_spills ir =
  List.exists
    (function Ir.I_spill_store _ | Ir.I_spill_load _ -> true | _ -> false)
    ir

let reg_limit_for compiler final_ir =
  match compiler with
  | Jit.Cogits.Register_allocating_cogit -> Ir.max_direct_vreg
  | _ -> if has_spills final_ir then Ir.max_direct_vreg else Ir.max_plain_vreg

let not_compiled_finding ~subject ~compiler cause msg =
  [
    Finding.v ~pass:Finding.Ir_check ~subject
      ~compiler:(Jit.Cogits.short_name compiler)
      ~family:Finding.Missing_functionality ~cause
      (Printf.sprintf "%s: %s" (Jit.Cogits.short_name compiler) msg);
  ]

(* Passes 3-4 on the lowered machine code of one unit: the lint and the
   abstract interpreter's IR-vs-machine consistency checks per arch,
   plus the static cross-ISA frame differ when several arches are
   lowered. *)
let machine_passes ~defects ~subject ~short ~arches ~lower final =
  let accessor_gaps = defects.Interpreter.Defects.simulation_accessor_gaps in
  let progs = List.map (fun arch -> (arch, lower arch)) arches in
  let per_arch =
    List.concat_map
      (fun (arch, prog) ->
        Machine_lint.lint ~accessor_gaps ~subject ~compiler:short
          ~arch:(arch_name arch) prog
        @ Abstract_mc.check_unit ~subject ~compiler:short
            ~arch:(arch_name arch)
            ~backend:(Jit.Codegen.backend_of arch)
            ~ir:final prog)
      progs
  in
  let cross =
    if List.length progs < 2 then []
    else
      Frame_diff.differ_arches ~subject ~compiler:short
        (List.map
           (fun (arch, prog) -> (arch_name arch, Abstract_mc.summarize prog))
           progs)
  in
  per_arch @ cross

(* Passes 1-3 for one byte-code compilation unit. *)
let verify_bytecode_unit ~defects ~compiler
    ?(arches = Jit.Codegen.all_arches) ?(literals = default_literals)
    ?stack_setup (op : Op.t) : Finding.t list =
  let subject = Op.mnemonic op in
  let stack_setup =
    match stack_setup with Some s -> s | None -> default_stack_setup op
  in
  let bytecode_findings =
    Bytecode_verifier.verify_unit ~num_literals:(Array.length literals)
      ~initial_depth:(List.length stack_setup) op
  in
  match
    ( Jit.Cogits.frontend_ir compiler ~defects ~literals ~stack_setup op,
      Jit.Cogits.compile_bytecode compiler ~defects ~literals ~stack_setup op
    )
  with
  | exception Jit.Cogits.Not_compiled msg ->
      bytecode_findings
      @ not_compiled_finding ~subject ~compiler
          (Printf.sprintf "missing-bytecode-support-%s(%s)" subject msg)
          msg
  | frontend, final ->
      let short = Jit.Cogits.short_name compiler in
      let ir_findings =
        Ir_verifier.single_assignment ~subject ~compiler:short frontend
        @ Ir_verifier.verify ~subject ~compiler:short
            ~reg_limit:(reg_limit_for compiler final)
            final
      in
      let machine_findings =
        machine_passes ~defects ~subject ~short ~arches
          ~lower:(fun arch -> Jit.Cogits.lower_for compiler ~arch final)
          final
      in
      bytecode_findings @ ir_findings @ machine_findings

(* Passes 1-4 for a byte-code sequence unit. *)
let verify_sequence_unit ~defects ~compiler
    ?(arches = Jit.Codegen.all_arches) ?(literals = default_literals)
    ?(stack_setup = []) (ops : Op.t list) : Finding.t list =
  let subject = String.concat ";" (List.map Op.mnemonic ops) in
  let bytecode_findings =
    Bytecode_verifier.verify_seq ~num_literals:(Array.length literals)
      ~initial_depth:(List.length stack_setup) ops
  in
  match
    Jit.Cogits.compile_sequence compiler ~defects ~literals ~stack_setup ops
  with
  | exception Jit.Cogits.Not_compiled msg ->
      bytecode_findings
      @ not_compiled_finding ~subject ~compiler
          (Printf.sprintf "missing-bytecode-support-%s(%s)" subject msg)
          msg
  | final ->
      let short = Jit.Cogits.short_name compiler in
      let ir_findings =
        Ir_verifier.verify ~subject ~compiler:short
          ~reg_limit:(reg_limit_for compiler final)
          final
      in
      let machine_findings =
        machine_passes ~defects ~subject ~short ~arches
          ~lower:(fun arch -> Jit.Cogits.lower_for compiler ~arch final)
          final
      in
      bytecode_findings @ ir_findings @ machine_findings

(* Passes 2-4 for one native-method unit. *)
let verify_native_unit ~defects ?(arches = Jit.Codegen.all_arches) (id : int)
    : Finding.t list =
  let subject = Interpreter.Primitive_table.name id in
  match Jit.Cogits.compile_native ~defects id with
  | exception Jit.Cogits.Not_compiled msg ->
      [
        Finding.v ~pass:Finding.Ir_check ~subject ~compiler:"native"
          ~family:Finding.Missing_functionality
          ~cause:(Printf.sprintf "missing-template-%s" subject)
          msg;
      ]
  | final ->
      let ir_findings =
        Ir_verifier.verify ~subject ~compiler:"native"
          ~reg_limit:Ir.max_direct_vreg final
      in
      let machine_findings =
        machine_passes ~defects ~subject ~short:"native" ~arches
          ~lower:(fun arch ->
            Jit.Cogits.lower_for Jit.Cogits.Native_method_compiler ~arch final)
          final
      in
      ir_findings @ machine_findings

(* Pass 5, with canonical unit parameters. *)
let differ_bytecode ~defects ?(literals = default_literals) ?stack_setup
    (op : Op.t) : Finding.t list =
  let stack_setup =
    match stack_setup with Some s -> s | None -> default_stack_setup op
  in
  Frame_diff.differ_bytecode ~defects ~literals ~stack_setup op

let differ_native = Frame_diff.differ_native

(* --- whole-universe sweep --- *)

type report = {
  defects : Interpreter.Defects.t;
  units : int; (* compilation units verified *)
  findings : Finding.t list;
}

let bytecode_universe () =
  Bytecodes.Encoding.all_defined_opcodes ()
  |> List.filter (fun op -> op <> Op.Push_this_context)

(* Missing-functionality findings are expected on the seeded
   configuration; [include_missing] lets callers focus on the defect
   families that indicate wrong (rather than absent) code. *)
let verify_all ?(defects = Interpreter.Defects.paper)
    ?(arches = Jit.Codegen.all_arches) ?(include_missing = true) () : report =
  let units = ref 0 in
  let findings = ref [] in
  let keep fs =
    let fs =
      if include_missing then fs
      else
        List.filter
          (fun (f : Finding.t) -> f.family <> Finding.Missing_functionality)
          fs
    in
    findings := !findings @ fs
  in
  List.iter
    (fun op ->
      List.iter
        (fun compiler ->
          incr units;
          keep (verify_bytecode_unit ~defects ~compiler ~arches op))
        Jit.Cogits.bytecode_compilers;
      keep (differ_bytecode ~defects op))
    (bytecode_universe ());
  List.iter
    (fun id ->
      incr units;
      keep (verify_native_unit ~defects ~arches id);
      keep (differ_native ~defects id))
    Interpreter.Primitive_table.ids;
  { defects; units = !units; findings = !findings }

(* Root causes, counted once per cause. *)
let causes (r : report) : (Finding.family * string * int) list =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Finding.t) ->
      let key = (f.family, f.cause) in
      Hashtbl.replace tbl key
        (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
    r.findings;
  Hashtbl.fold (fun (family, cause) n acc -> (family, cause, n) :: acc) tbl []
  |> List.sort compare

(* --- machine-layer sweep of the abstract interpreter alone ---

   What [vmtest verify --abstract] and [bench verify] run: per unit and
   per arch, the lint (itself a client of the fixpoint's reachability),
   the fixpoint-based consistency checks, the abstract frame-effect
   summary, the symbolic cross-check, and the cross-ISA differ — no
   byte-code/IR passes, so the counters isolate the machine layer. *)

type arch_tally = {
  at_programs : int; (* units lowered for this ISA *)
  at_paths : int; (* abstract paths enumerated on this ISA *)
  at_truncated : int; (* programs whose enumeration hit the budget *)
  at_findings : int;
      (* findings naming this ISA; a pair-labelled cross-ISA finding
         ("x86+rv32") counts toward both members *)
}

type abstract_report = {
  ab_defects : Interpreter.Defects.t;
  ab_units : int; (* compilation units swept *)
  ab_programs : int; (* lowered programs interpreted (units x arches) *)
  ab_paths : int; (* abstract paths enumerated *)
  ab_truncated : int; (* programs whose enumeration hit the budget *)
  ab_crosschecked : int; (* programs cross-checked against Symexec_mc *)
  ab_findings : Finding.t list;
  ab_by_arch : (string * arch_tally) list;
      (* per-ISA sections, in [arches] order — the CI gate asserts one
         section per swept ISA *)
}

let abstract_all ?(defects = Interpreter.Defects.paper)
    ?(arches = Jit.Codegen.all_arches) ?(crosscheck = true) () :
    abstract_report =
  let accessor_gaps = defects.Interpreter.Defects.simulation_accessor_gaps in
  let units = ref 0
  and programs = ref 0
  and paths = ref 0
  and truncated = ref 0
  and crosschecked = ref 0 in
  let findings = ref [] in
  let no_tally =
    { at_programs = 0; at_paths = 0; at_truncated = 0; at_findings = 0 }
  in
  let tallies : (string, arch_tally) Hashtbl.t = Hashtbl.create 4 in
  let run ~subject ~short ~lower final =
    incr units;
    let triples =
      List.map
        (fun arch ->
          let prog = lower arch in
          incr programs;
          let s = Abstract_mc.summarize prog in
          paths := !paths + List.length s.Abstract_mc.apaths;
          if s.Abstract_mc.atruncated then incr truncated;
          let an = arch_name arch in
          let t = Option.value (Hashtbl.find_opt tallies an) ~default:no_tally in
          Hashtbl.replace tallies an
            {
              t with
              at_programs = t.at_programs + 1;
              at_paths = t.at_paths + List.length s.Abstract_mc.apaths;
              at_truncated =
                (t.at_truncated + if s.Abstract_mc.atruncated then 1 else 0);
            };
          (arch, prog, s))
        arches
    in
    let per_arch =
      List.concat_map
        (fun (arch, prog, s) ->
          let an = arch_name arch in
          let checks =
            Machine_lint.lint ~accessor_gaps ~subject ~compiler:short ~arch:an
              prog
            @ Abstract_mc.check_unit ~subject ~compiler:short ~arch:an
                ~backend:(Jit.Codegen.backend_of arch) ~ir:final prog
          in
          let cross =
            if crosscheck then begin
              incr crosschecked;
              Abstract_mc.crosscheck ~subject ~compiler:short ~arch:an
                ~accessor_gaps prog s
            end
            else []
          in
          checks @ cross)
        triples
    in
    let differ =
      Frame_diff.differ_arches ~subject ~compiler:short
        (List.map (fun (arch, _, s) -> (arch_name arch, s)) triples)
    in
    findings := !findings @ per_arch @ differ
  in
  List.iter
    (fun op ->
      let subject = Op.mnemonic op in
      let stack_setup = default_stack_setup op in
      List.iter
        (fun compiler ->
          match
            Jit.Cogits.compile_bytecode compiler ~defects
              ~literals:default_literals ~stack_setup op
          with
          | exception Jit.Cogits.Not_compiled _ -> ()
          | final ->
              run ~subject ~short:(Jit.Cogits.short_name compiler)
                ~lower:(fun arch -> Jit.Cogits.lower_for compiler ~arch final)
                final)
        Jit.Cogits.bytecode_compilers)
    (bytecode_universe ());
  List.iter
    (fun id ->
      match Jit.Cogits.compile_native ~defects id with
      | exception Jit.Cogits.Not_compiled _ -> ()
      | final ->
          run
            ~subject:(Interpreter.Primitive_table.name id)
            ~short:"native"
            ~lower:(fun arch ->
              Jit.Cogits.lower_for Jit.Cogits.Native_method_compiler ~arch
                final)
            final)
    Interpreter.Primitive_table.ids;
  let findings_naming name =
    List.length
      (List.filter
         (fun (f : Finding.t) ->
           List.mem name (String.split_on_char '+' f.arch))
         !findings)
  in
  {
    ab_defects = defects;
    ab_units = !units;
    ab_programs = !programs;
    ab_paths = !paths;
    ab_truncated = !truncated;
    ab_crosschecked = !crosschecked;
    ab_findings = !findings;
    ab_by_arch =
      List.map
        (fun arch ->
          let name = arch_name arch in
          let t =
            Option.value (Hashtbl.find_opt tallies name) ~default:no_tally
          in
          (name, { t with at_findings = findings_naming name }))
        arches;
  }

let abstract_causes (r : abstract_report) :
    (Finding.family * string * int) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Finding.t) ->
      let key = (f.family, f.cause) in
      Hashtbl.replace tbl key
        (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
    r.ab_findings;
  Hashtbl.fold (fun (family, cause) n acc -> (family, cause, n) :: acc) tbl []
  |> List.sort compare

let pp_report ppf (r : report) =
  Fmt.pf ppf "static verification: %d units, %d findings, %d causes@."
    r.units
    (List.length r.findings)
    (List.length (causes r));
  List.iter
    (fun (family, cause, n) ->
      Fmt.pf ppf "  %-28s %s (%d finding%s)@."
        (Finding.family_name family)
        cause n
        (if n = 1 then "" else "s"))
    (causes r)
