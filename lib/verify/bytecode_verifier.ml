(* Pass 1: the byte-code verifier.

   Abstractly interprets a compiled method (or a single-instruction
   compilation unit) over the one abstraction that matters to the JIT
   schema: operand-stack depth.  Along every path it checks depth
   balance (no underflow, agreeing depths at join points), branch
   targets landing on instruction boundaries, literal/temp index
   bounds, and flags unreachable instructions.

   Two modes:
   - [Method]: a self-contained compiled method, as the interpreter
     executes it.  Control leaving the decoded byte-code range is a
     finding (the interpreter would fault fetching the next opcode).
   - [Unit]: the JIT's compilation-unit schema (Listing 3), where the
     instruction starts on a stack pre-populated by setup pushes and a
     branch past the end lands on an appended stop marker. *)

module Op = Bytecodes.Opcode
module Enc = Bytecodes.Encoding

type mode = Method | Unit

let finding ~subject cause detail =
  Finding.v ~pass:Finding.Bytecode_check ~subject ~family:Finding.Structural
    ~cause detail

(* Stack effect of the success path; operand consumption is
   [Op.min_operands].  Returns [None] for returns (no successor). *)
let success_delta (op : Op.t) : int option =
  match op with
  | Op.Push_receiver_variable _ | Op.Push_literal_constant _ | Op.Push_temp _
  | Op.Push_receiver | Op.Push_true | Op.Push_false | Op.Push_nil
  | Op.Push_zero | Op.Push_one | Op.Push_minus_one | Op.Push_two
  | Op.Push_this_context | Op.Push_temp_ext _ | Op.Push_literal_ext _
  | Op.Push_receiver_variable_ext _ | Op.Push_integer_byte _ | Op.Dup ->
      Some 1
  | Op.Pop | Op.Store_and_pop_receiver_variable _ | Op.Store_and_pop_temp _
  | Op.Store_temp_ext _ | Op.Store_receiver_variable_ext _ ->
      Some (-1)
  | Op.Swap | Op.Nop | Op.Jump _ | Op.Jump_ext _ -> Some 0
  | Op.Jump_false _ | Op.Jump_true _ | Op.Jump_false_ext _
  | Op.Jump_true_ext _ ->
      Some (-1)
  | Op.Arith_special _ -> Some (-1)
  | Op.Common_special _ -> Some (1 - Op.min_operands op)
  | Op.Send { num_args; _ } | Op.Send_ext { num_args; _ } -> Some (-num_args)
  | Op.Return_top | Op.Return_receiver | Op.Return_true | Op.Return_false
  | Op.Return_nil ->
      None

let verify_decoded ~subject ~mode ~num_literals ~num_temps ~initial_depth
    (instrs : (int * Op.t) list) : Finding.t list =
  let findings = ref [] in
  let once = Hashtbl.create 16 in
  let add key cause detail =
    if not (Hashtbl.mem once key) then begin
      Hashtbl.replace once key ();
      findings := finding ~subject cause detail :: !findings
    end
  in
  let at = Hashtbl.create 16 in
  List.iter (fun (pc, op) -> Hashtbl.replace at pc op) instrs;
  (* static index bounds, independent of reachability *)
  List.iter
    (fun (pc, op) ->
      let oob what n limit =
        add
          (Printf.sprintf "oob-%s-%d" what pc)
          (Printf.sprintf "%s-index-out-of-bounds" what)
          (Printf.sprintf "pc %d: %s index %d outside [0, %d)" pc what n limit)
      in
      match op with
      | Op.Push_literal_constant n | Op.Push_literal_ext n ->
          if n < 0 || n >= num_literals then oob "literal" n num_literals
      | Op.Send { selector = n; _ } | Op.Send_ext { selector = n; _ } ->
          if n < 0 || n >= num_literals then oob "selector" n num_literals
      | Op.Push_temp n | Op.Push_temp_ext n | Op.Store_and_pop_temp n
      | Op.Store_temp_ext n ->
          if n < 0 || n >= num_temps then oob "temp" n num_temps
      | _ -> ())
    instrs;
  (* worklist abstract interpretation over stack depth *)
  let depth_at = Hashtbl.create 16 in
  let work = Queue.create () in
  let join pc depth =
    match Hashtbl.find_opt depth_at pc with
    | Some d ->
        if d <> depth then
          add
            (Printf.sprintf "depth-%d" pc)
            "stack-depth-mismatch"
            (Printf.sprintf "pc %d joined with stack depths %d and %d" pc d
               depth)
    | None ->
        Hashtbl.replace depth_at pc depth;
        Queue.add pc work
  in
  (* a branch target is walkable if it is an instruction boundary; in
     unit mode a forward target past the end lands on an appended stop
     marker (Listing 3) and is fine *)
  let goto ~from target depth =
    if Hashtbl.mem at target then join target depth
    else
      match mode with
      | Unit ->
          (* every out-of-unit target — forward or backward — lands on a
             distinct appended stop marker (Listing 3) *)
          ()
      | Method ->
          if target < 0 then
            add
              (Printf.sprintf "target-%d" from)
              "branch-target-out-of-range"
              (Printf.sprintf "pc %d branches to negative pc %d" from target)
          else if List.exists (fun (pc, _) -> pc > target) instrs then
            add
              (Printf.sprintf "target-%d" from)
              "branch-target-mid-instruction"
              (Printf.sprintf "pc %d branches into the middle of an \
                               instruction at pc %d" from target)
          else
            add
              (Printf.sprintf "target-%d" from)
              "branch-target-out-of-range"
              (Printf.sprintf "pc %d branches past the method end to pc %d"
                 from target)
  in
  let fall ~from next depth =
    if Hashtbl.mem at next then join next depth
    else
      match mode with
      | Unit -> () (* the appended stop marker catches fall-through *)
      | Method ->
          add
            (Printf.sprintf "falloff-%d" from)
            "control-falls-off-method-end"
            (Printf.sprintf "pc %d falls through past the last instruction \
                             (the interpreter would fault fetching pc %d)"
               from next)
  in
  (match (instrs, mode) with
  | [], Method ->
      (* the interpreter faults immediately fetching pc 0 *)
      add "empty" "control-falls-off-method-end"
        "the method has no instructions; the interpreter would fault \
         fetching pc 0"
  | [], Unit -> ()
  | _ :: _, _ -> join 0 initial_depth);
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    let depth = Hashtbl.find depth_at pc in
    let op = Hashtbl.find at pc in
    let need = Op.min_operands op in
    if depth < need then
      add
        (Printf.sprintf "underflow-%d" pc)
        "operand-stack-underflow"
        (Printf.sprintf "pc %d: %s needs %d operand(s), stack depth is %d" pc
           (Op.mnemonic op) need depth);
    let next = pc + List.length (Enc.encode op) in
    match success_delta op with
    | None -> () (* return: no successor *)
    | Some delta -> (
        match op with
        | Op.Jump d | Op.Jump_ext d -> goto ~from:pc (next + d) depth
        | Op.Jump_false d | Op.Jump_true d | Op.Jump_false_ext d
        | Op.Jump_true_ext d ->
            goto ~from:pc (next + d) (depth + delta);
            fall ~from:pc next (depth + delta)
        | _ -> fall ~from:pc next (depth + delta))
  done;
  (* anything the walk never reached is dead code *)
  List.iter
    (fun (pc, op) ->
      if not (Hashtbl.mem depth_at pc) then
        add
          (Printf.sprintf "unreach-%d" pc)
          "unreachable-code"
          (Printf.sprintf "pc %d: %s is unreachable" pc (Op.mnemonic op)))
    instrs;
  List.rev !findings

let verify_method ?(subject = "method") ?(initial_depth = 0)
    (m : Bytecodes.Compiled_method.t) : Finding.t list =
  match Bytecodes.Compiled_method.instructions m with
  | exception Enc.Invalid_bytecode { byte; pc } ->
      [
        finding ~subject "invalid-bytecode"
          (Printf.sprintf "undecodable byte 0x%02x at pc %d" byte pc);
      ]
  | instrs ->
      verify_decoded ~subject ~mode:Method
        ~num_literals:(Bytecodes.Compiled_method.num_literals m)
        ~num_temps:
          (Bytecodes.Compiled_method.num_args m
          + Bytecodes.Compiled_method.num_temps m)
        ~initial_depth instrs

let verify_unit ~num_literals ~initial_depth (op : Op.t) : Finding.t list =
  verify_decoded ~subject:(Op.mnemonic op) ~mode:Unit ~num_literals
    ~num_temps:Machine.Machine_code.num_frame_temps ~initial_depth
    [ (0, op) ]

let verify_seq ~num_literals ~initial_depth (ops : Op.t list) : Finding.t list
    =
  let _, rev =
    List.fold_left
      (fun (pc, acc) op ->
        (pc + List.length (Enc.encode op), (pc, op) :: acc))
      (0, []) ops
  in
  let subject =
    String.concat ";" (List.map Op.mnemonic ops)
  in
  verify_decoded ~subject ~mode:Unit ~num_literals
    ~num_temps:Machine.Machine_code.num_frame_temps ~initial_depth
    (List.rev rev)
