(* The compiler intermediate representation (cf. paper Listing 2).

   A register-based linear IR with virtual registers, explicit type-check
   instructions ([I_check_small_int] is the paper's [checkSmallInteger]),
   tag/untag conversions, overflow-checked arithmetic, and the runtime
   interface ops (trampoline sends, returns, breakpoints).

   Virtual registers [0..7] map to machine temp registers;
   the reserved virtual registers [scratch0/1/2] map to the machine
   scratch registers (used by the extended receiver-variable byte-codes,
   where the seeded simulation-error accessors live). *)

type vreg = int [@@deriving show, eq]

(* Reserved virtual registers mapping to the machine scratch registers. *)
let scratch0 = 100
let scratch1 = 101
let scratch2 = 102
let max_plain_vreg = 64 (* virtual; codegen fits them into 16 machine temps *)
let max_direct_vreg = 16 (* vregs mapping 1:1 onto machine temp registers *)

type operand =
  | V of vreg
  | C of int (* a constant machine word (tagged oop or untagged int) *)
  | Recv (* the receiver register *)
  | Arg of int (* argument registers (native-method convention) *)
[@@deriving show { with_path = false }, eq]

type cond = Machine.Machine_code.cond =
  | Eq | Ne | Lt | Le | Gt | Ge | Vs | Vc
[@@deriving show { with_path = false }, eq]

type alu = Machine.Machine_code.alu =
  | Add | Sub | Mul | Div | Mod | Quo | Rem | And | Or | Xor | Shl | Sar
[@@deriving show { with_path = false }, eq]

type falu = Machine.Machine_code.falu = FAdd | FSub | FMul | FDiv
[@@deriving show { with_path = false }, eq]

type send_info = Machine.Machine_code.send_info = {
  selector : Interpreter.Exit_condition.selector;
  num_args : int;
}
[@@deriving show { with_path = false }, eq]

type ir =
  | I_label of string
  | I_move of vreg * operand
  | I_push of operand
  | I_pop of vreg
  | I_load_temp of vreg * int
  | I_store_temp of int * operand
  (* type and shape checks: jump to the label when the check FAILS *)
  | I_check_small_int of operand * string
  | I_check_not_small_int of operand * string (* jump when it IS tagged *)
  | I_check_class of operand * int * string
  | I_check_pointers of operand * string
  | I_check_bytes of operand * string
  | I_check_indexable of operand * string
  | I_untag of vreg * operand
  | I_tag of vreg * operand
  | I_alu of alu * vreg * operand * operand (* dst = a op b; sets flags *)
  | I_jump_overflow of string (* after a flag-setting op *)
  | I_check_range of operand * string (* jump if outside smallint range *)
  | I_cmp_jump of cond * operand * operand * string
  | I_jump of string
  | I_bool_result of cond * vreg * operand * operand (* dst = bool oop *)
  (* heap access (unsafe: traps on bad input, like real compiled code) *)
  | I_load_slot of vreg * operand * operand
  | I_store_slot of operand * operand * operand (* base, index, value *)
  | I_load_byte of vreg * operand * operand
  | I_store_byte of operand * operand * operand
  | I_load_num_slots of vreg * operand
  | I_load_indexable_size of vreg * operand
  | I_load_fixed_size of vreg * operand
  | I_load_class_object of vreg * operand
  (* floats; float registers are physical (F0..F3) *)
  | I_unbox_float of int * operand
  | I_box_float of vreg * int
  | I_falu of falu * int * int * int
  | I_fsqrt of int * int
  | I_fcmp_jump of cond * int * int * string
  | I_fbool_result of cond * vreg * int * int
  | I_cvt_int_float of int * operand (* float reg ← untagged int *)
  | I_trunc_float_int of vreg * int
  | I_float_from_bits32 of int * operand
  | I_float_to_bits32 of vreg * int
  | I_float_from_bits64 of int * operand * operand (* freg, hi, lo *)
  | I_float_to_bits64_hi of vreg * int
  | I_float_to_bits64_lo of vreg * int
  (* object ops *)
  | I_identity_hash of vreg * operand
  | I_shallow_copy of vreg * operand
  | I_make_point of vreg * operand * operand
  | I_make_char of vreg * operand
  | I_char_value of vreg * operand
  | I_alloc of vreg * int * operand
  (* runtime interface *)
  | I_send of send_info
  | I_return of operand
  | I_stop of int
  (* register-allocator spills *)
  | I_spill_store of int * vreg
  | I_spill_load of vreg * int
[@@deriving show { with_path = false }]

(* --- Compile context: code emission, fresh registers and labels --- *)

exception Unsupported_instruction of string

type ctx = {
  mutable code : ir list; (* reversed *)
  mutable next_vreg : int;
  mutable next_label : int;
  defects : Interpreter.Defects.t;
}

let create_ctx ~defects = { code = []; next_vreg = 0; next_label = 0; defects }

let emit ctx i = ctx.code <- i :: ctx.code

let fresh_vreg ctx =
  let v = ctx.next_vreg in
  if v >= max_plain_vreg then
    raise (Unsupported_instruction "virtual register pressure too high");
  ctx.next_vreg <- v + 1;
  v

let fresh_label ctx prefix =
  let n = ctx.next_label in
  ctx.next_label <- n + 1;
  Printf.sprintf "%s_%d" prefix n

let finish ctx = List.rev ctx.code

(* Tagged well-known constants (singleton oops are deterministic). *)
let nil_word = 8
let true_word = 16
let false_word = 24
let tagged_int i = (Vm_objects.Value.of_small_int i :> int)

(* Registers used by virtual registers (for the linear-scan allocator). *)
let operand_vregs = function V v -> [ v ] | C _ | Recv | Arg _ -> []

let def_use (i : ir) : vreg list * vreg list =
  (* (defs, uses) *)
  match i with
  | I_label _ | I_jump _ | I_jump_overflow _ | I_send _ | I_stop _ -> ([], [])
  | I_move (d, o) -> ([ d ], operand_vregs o)
  | I_push o -> ([], operand_vregs o)
  | I_pop d -> ([ d ], [])
  | I_load_temp (d, _) -> ([ d ], [])
  | I_store_temp (_, o) -> ([], operand_vregs o)
  | I_check_small_int (o, _)
  | I_check_not_small_int (o, _)
  | I_check_class (o, _, _)
  | I_check_pointers (o, _)
  | I_check_bytes (o, _)
  | I_check_indexable (o, _)
  | I_check_range (o, _) ->
      ([], operand_vregs o)
  | I_untag (d, o) | I_tag (d, o) -> ([ d ], operand_vregs o)
  | I_alu (_, d, a, b) -> ([ d ], operand_vregs a @ operand_vregs b)
  | I_cmp_jump (_, a, b, _) -> ([], operand_vregs a @ operand_vregs b)
  | I_bool_result (_, d, a, b) -> ([ d ], operand_vregs a @ operand_vregs b)
  | I_load_slot (d, a, b) | I_load_byte (d, a, b) ->
      ([ d ], operand_vregs a @ operand_vregs b)
  | I_store_slot (a, b, c) | I_store_byte (a, b, c) ->
      ([], operand_vregs a @ operand_vregs b @ operand_vregs c)
  | I_load_num_slots (d, o)
  | I_load_indexable_size (d, o)
  | I_load_fixed_size (d, o)
  | I_load_class_object (d, o)
  | I_identity_hash (d, o)
  | I_shallow_copy (d, o)
  | I_make_char (d, o)
  | I_char_value (d, o)
  | I_alloc (d, _, o) ->
      ([ d ], operand_vregs o)
  | I_make_point (d, a, b) -> ([ d ], operand_vregs a @ operand_vregs b)
  | I_unbox_float (_, o) | I_cvt_int_float (_, o) -> ([], operand_vregs o)
  | I_box_float (d, _)
  | I_trunc_float_int (d, _)
  | I_float_to_bits32 (d, _)
  | I_float_to_bits64_hi (d, _)
  | I_float_to_bits64_lo (d, _) ->
      ([ d ], [])
  | I_float_from_bits32 (_, o) -> ([], operand_vregs o)
  | I_float_from_bits64 (_, a, b) -> ([], operand_vregs a @ operand_vregs b)
  | I_falu _ | I_fsqrt _ | I_fcmp_jump _ -> ([], [])
  | I_fbool_result (_, d, _, _) -> ([ d ], [])
  | I_return o -> ([], operand_vregs o)
  | I_spill_store (_, v) -> ([], [ v ])
  | I_spill_load (d, _) -> ([ d ], [])

(* Rewrite every virtual register through [f] (reserved scratch vregs are
   left untouched); used by the linear-scan allocator. *)
let map_vregs (f : vreg -> vreg) (i : ir) : ir =
  let g v = if v >= 100 then v else f v in
  let o = function V v -> V (g v) | (C _ | Recv | Arg _) as x -> x in
  match i with
  | I_label _ | I_jump _ | I_jump_overflow _ | I_send _ | I_stop _ -> i
  | I_move (d, a) -> I_move (g d, o a)
  | I_push a -> I_push (o a)
  | I_pop d -> I_pop (g d)
  | I_load_temp (d, n) -> I_load_temp (g d, n)
  | I_store_temp (n, a) -> I_store_temp (n, o a)
  | I_check_small_int (a, l) -> I_check_small_int (o a, l)
  | I_check_not_small_int (a, l) -> I_check_not_small_int (o a, l)
  | I_check_class (a, c, l) -> I_check_class (o a, c, l)
  | I_check_pointers (a, l) -> I_check_pointers (o a, l)
  | I_check_bytes (a, l) -> I_check_bytes (o a, l)
  | I_check_indexable (a, l) -> I_check_indexable (o a, l)
  | I_untag (d, a) -> I_untag (g d, o a)
  | I_tag (d, a) -> I_tag (g d, o a)
  | I_alu (op, d, a, b) -> I_alu (op, g d, o a, o b)
  | I_check_range (a, l) -> I_check_range (o a, l)
  | I_cmp_jump (c, a, b, l) -> I_cmp_jump (c, o a, o b, l)
  | I_bool_result (c, d, a, b) -> I_bool_result (c, g d, o a, o b)
  | I_load_slot (d, a, b) -> I_load_slot (g d, o a, o b)
  | I_store_slot (a, b, c) -> I_store_slot (o a, o b, o c)
  | I_load_byte (d, a, b) -> I_load_byte (g d, o a, o b)
  | I_store_byte (a, b, c) -> I_store_byte (o a, o b, o c)
  | I_load_num_slots (d, a) -> I_load_num_slots (g d, o a)
  | I_load_indexable_size (d, a) -> I_load_indexable_size (g d, o a)
  | I_load_fixed_size (d, a) -> I_load_fixed_size (g d, o a)
  | I_load_class_object (d, a) -> I_load_class_object (g d, o a)
  | I_unbox_float (f', a) -> I_unbox_float (f', o a)
  | I_box_float (d, f') -> I_box_float (g d, f')
  | I_falu _ | I_fsqrt _ | I_fcmp_jump _ -> i
  | I_fbool_result (c, d, a, b) -> I_fbool_result (c, g d, a, b)
  | I_cvt_int_float (f', a) -> I_cvt_int_float (f', o a)
  | I_trunc_float_int (d, f') -> I_trunc_float_int (g d, f')
  | I_float_from_bits32 (f', a) -> I_float_from_bits32 (f', o a)
  | I_float_to_bits32 (d, f') -> I_float_to_bits32 (g d, f')
  | I_float_from_bits64 (f', a, b) -> I_float_from_bits64 (f', o a, o b)
  | I_float_to_bits64_hi (d, f') -> I_float_to_bits64_hi (g d, f')
  | I_float_to_bits64_lo (d, f') -> I_float_to_bits64_lo (g d, f')
  | I_identity_hash (d, a) -> I_identity_hash (g d, o a)
  | I_shallow_copy (d, a) -> I_shallow_copy (g d, o a)
  | I_make_point (d, a, b) -> I_make_point (g d, o a, o b)
  | I_make_char (d, a) -> I_make_char (g d, o a)
  | I_char_value (d, a) -> I_char_value (g d, o a)
  | I_alloc (d, c, a) -> I_alloc (g d, c, o a)
  | I_return a -> I_return (o a)
  | I_spill_store (s, v) -> I_spill_store (s, g v)
  | I_spill_load (d, s) -> I_spill_load (g d, s)

(* --- control-flow shape, for the static verifier --- *)

(* Control never falls through these: a send leaves the unit through the
   trampoline, returns and stop markers end it. *)
let is_terminator = function
  | I_send _ | I_return _ | I_stop _ -> true
  | _ -> false

(* The label a (conditional or unconditional) control transfer may reach. *)
let branch_target = function
  | I_check_small_int (_, l)
  | I_check_not_small_int (_, l)
  | I_check_class (_, _, l)
  | I_check_pointers (_, l)
  | I_check_bytes (_, l)
  | I_check_indexable (_, l)
  | I_check_range (_, l)
  | I_jump_overflow l
  | I_cmp_jump (_, _, _, l)
  | I_fcmp_jump (_, _, _, l)
  | I_jump l ->
      Some l
  | _ -> None

let is_unconditional_jump = function I_jump _ -> true | _ -> false
