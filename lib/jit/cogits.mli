(** The four compiler front-ends of the evaluation (§4.1, Table 2),
    behind one interface the differential tester drives. *)

type compiler =
  | Native_method_compiler  (** hand-written IR templates (§4.2) *)
  | Simple_stack_cogit  (** push/pop 1:1, no type prediction *)
  | Stack_to_register_cogit  (** parse-time simulation stack (production) *)
  | Register_allocating_cogit  (** + linear-scan allocation (experimental) *)

val name : compiler -> string
(** The compiler's row label in Table 2. *)

val short_name : compiler -> string
val all : compiler list
val bytecode_compilers : compiler list
val equal_compiler : compiler -> compiler -> bool
val compare_compiler : compiler -> compiler -> int
val pp_compiler : Format.formatter -> compiler -> unit
val show_compiler : compiler -> string

exception Not_compiled of string
(** The compiler has no implementation for this unit — the paper's
    "missing functionality" differences surface as this at test time. *)

val fit_registers : Ir.ir list -> Ir.ir list
(** Spill-on-demand: units using more virtual registers than the machine
    has temps are routed through the linear-scan allocator. *)

val frontend_ir :
  compiler ->
  defects:Interpreter.Defects.t ->
  literals:int array ->
  stack_setup:int list ->
  Bytecodes.Opcode.t ->
  Ir.ir list
(** The front-end's IR for one byte-code unit, before any register
    allocation — the form the static verifier's single-assignment check
    and the cross-compiler differ inspect.
    @raise Not_compiled when unsupported. *)

val frontend_native_ir : defects:Interpreter.Defects.t -> int -> Ir.ir list
(** A native-method template's IR before register allocation.
    @raise Not_compiled for the seeded missing templates. *)

val compile_bytecode :
  compiler ->
  defects:Interpreter.Defects.t ->
  literals:int array ->
  stack_setup:int list ->
  Bytecodes.Opcode.t ->
  Ir.ir list
(** Compile one byte-code instruction as a unit (setup pushes +
    instruction + stop markers, Listing 3).
    @raise Not_compiled when unsupported. *)

val compile_sequence :
  ?lookahead:bool ->
  compiler ->
  defects:Interpreter.Defects.t ->
  literals:int array ->
  stack_setup:int list ->
  Bytecodes.Opcode.t list ->
  Ir.ir list
(** Compile a byte-code sequence as one unit (future-work extension).
    [lookahead] fuses compare + conditional-jump pairs (stack-to-register
    policies only). *)

val compile_native : defects:Interpreter.Defects.t -> int -> Ir.ir list
(** Compile a native method from its template (Listing 4 schema).
    @raise Not_compiled for the 60 seeded missing templates. *)

val lower_for :
  compiler -> arch:Codegen.arch -> Ir.ir list -> Machine.Machine_code.program
(** [Codegen.lower] plus the machine-code fault-injection hook for
    [compiler] (see {!Fault}); all lowering — the test pipeline's and
    the static verifier's — must go through here so machine-layer
    mutants are visible to every oracle. *)

val compile_bytecode_to_machine :
  compiler ->
  defects:Interpreter.Defects.t ->
  literals:int array ->
  stack_setup:int list ->
  arch:Codegen.arch ->
  Bytecodes.Opcode.t ->
  Machine.Machine_code.program

val compile_sequence_to_machine :
  ?lookahead:bool ->
  compiler ->
  defects:Interpreter.Defects.t ->
  literals:int array ->
  stack_setup:int list ->
  arch:Codegen.arch ->
  Bytecodes.Opcode.t list ->
  Machine.Machine_code.program

val compile_native_to_machine :
  defects:Interpreter.Defects.t ->
  arch:Codegen.arch ->
  int ->
  Machine.Machine_code.program
