(** Compiler fault injection: the mutation engine's hook layer.

    Operators (defined in [lib/mutate]) are activated domain-locally via
    {!with_fault}; the {!Cogits} pipeline consults the active fault at
    each stage and rewrites its artifact when the operator applies.  The
    pristine pipeline pays one [None] check per hook. *)

type stage =
  | Frontend  (** IR as the front-end emitted it, before allocation *)
  | Final  (** IR after register allocation (spills exist here) *)

type layer = L_template | L_ir | L_machine

val layer_name : layer -> string

type op = {
  id : string;  (** stable operator identifier, e.g. ["ir-drop-guard"] *)
  layer : layer;
  rewrite_opcode : Bytecodes.Opcode.t -> Bytecodes.Opcode.t option;
  rewrite_ir : stage -> Ir.ir list -> Ir.ir list option;
  rewrite_machine :
    Machine.Machine_code.program -> Machine.Machine_code.program option;
}
(** A rewrite returns [None] when it does not apply; [Some] marks the
    fault as fired for the current activation. *)

val none_opcode : Bytecodes.Opcode.t -> Bytecodes.Opcode.t option
val none_ir : stage -> Ir.ir list -> Ir.ir list option

val none_machine :
  Machine.Machine_code.program -> Machine.Machine_code.program option

type active = { op : op; target : string; fired : bool ref }

val current : unit -> active option
(** The domain's active fault, if any. *)

val with_fault : target:string -> op -> (unit -> 'a) -> 'a * bool
(** [with_fault ~target op f] runs [f] with [op] active against the
    front-end whose {!Cogits.short_name} is [target]; returns [f ()]'s
    result and whether any rewrite fired.  The previous activation is
    restored on exit (also on exceptions). *)

val cache_tag : unit -> string
(** A key component ([""] when no fault is active) that every memo of
    compiled-code-derived values must fold into its key. *)

val apply_opcode : compiler:string -> Bytecodes.Opcode.t -> Bytecodes.Opcode.t

val apply_opcodes :
  compiler:string -> Bytecodes.Opcode.t list -> Bytecodes.Opcode.t list
(** Sequence variant: rewrites only the first applicable opcode. *)

val apply_ir : compiler:string -> stage -> Ir.ir list -> Ir.ir list
val apply_machine : compiler:string -> Machine.Machine_code.program -> Machine.Machine_code.program
