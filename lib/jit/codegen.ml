(* IR → machine-code lowering, parameterised by the first-class back-end
   signature {!Machine.Backend_sig.S}.

   The back-ends differ where real ISAs differ: data movement, ALU shape
   (x86 two-address with destructive destinations vs ARM32/RISC-V
   three-address), and above all the guard discipline — flags back-ends
   split every guard into a flag-setting compare plus [jcc], while the
   flagless RISC-V-style back-end fuses compares into branches or
   materialises boolean outcomes first.  The lowering therefore talks to
   the back-end through combined guard sites ([cmp_branch],
   [tag_branch], [ovf_branch], [bool_result], [fcmp_branch],
   [fbool_result]); complex object-representation ops lower to the
   shared simulator pseudo-ops (cf. {!Machine.Machine_code}).  The
   encoders and the register-file convention both come from the back-end
   instance, so adding an ISA is one new {!Machine.Backend.t} plus one
   [Make] application.

   Scratch-register discipline: [scratch0] and the class register are the
   only general materialisation scratches; [scratch1]/[scratch2] are
   reserved for the extended receiver-variable byte-codes so that the
   seeded simulation-error accessors only fire on those instructions. *)

module MC = Machine.Machine_code

type arch = X86 | Arm32 | Rv32

let arch_name = function X86 -> "x86" | Arm32 -> "arm32" | Rv32 -> "rv32"
let all_arches = [ X86; Arm32; Rv32 ]

let backend_of : arch -> Machine.Backend.t = function
  | X86 -> Machine.Backend.x86
  | Arm32 -> Machine.Backend.arm32
  | Rv32 -> Machine.Backend.rv32

exception Codegen_error of string

module Make (B : Machine.Backend_sig.S) = struct
  let scratch0 = List.nth B.scratch_regs 0

  let arg_reg n =
    match List.nth_opt B.arg_regs n with
    | Some r -> r
    | None ->
        raise
          (Codegen_error
             (Printf.sprintf "argument %d exceeds the %s argument registers" n
                B.name))

  let phys_of_vreg (v : Ir.vreg) : MC.reg =
    if v >= 100 && v <= 102 then List.nth B.scratch_regs (v - 100)
    else if v >= 0 && v < Ir.max_direct_vreg then B.temp_base + v
    else
      raise
        (Codegen_error
           (Printf.sprintf "vreg %d exceeds the register file (allocator pass missing)" v))

  type st = {
    mutable out : MC.instr list; (* reversed *)
    mutable labels : int;
    mutable last_alu : MC.reg option;
        (* register holding the most recent ALU result, for the flagless
           back-end's overflow re-test (flags back-ends keep the sticky
           overflow flag instead and ignore it) *)
  }

  let emit st is = List.iter (fun i -> st.out <- i :: st.out) is

  let emit_alu st op ~dst ~a ~b =
    emit st (B.alu op ~dst ~a ~b);
    st.last_alu <- Some dst

  let fresh_label st =
    let n = st.labels in
    st.labels <- n + 1;
    Printf.sprintf "cg$%d" n

  (* Materialise an IR operand into a register ([scratch] used for
     constants). *)
  let reg_of st (o : Ir.operand) ~(scratch : MC.reg) : MC.reg =
    match o with
    | Ir.V v -> phys_of_vreg v
    | Ir.C c ->
        emit st (B.mov_ri scratch c);
        scratch
    | Ir.Recv -> B.receiver_reg
    | Ir.Arg n -> arg_reg n

  (* Operand position that accepts immediates directly. *)
  let mop (o : Ir.operand) : MC.operand =
    match o with
    | Ir.V v -> MC.R (phys_of_vreg v)
    | Ir.C c -> MC.I c
    | Ir.Recv -> MC.R B.receiver_reg
    | Ir.Arg n -> MC.R (arg_reg n)

  let lower_instr st (i : Ir.ir) =
    match i with
    | Ir.I_label l -> emit st [ MC.Label l ]
    | Ir.I_move (d, o) -> (
        match o with
        | Ir.C c -> emit st (B.mov_ri (phys_of_vreg d) c)
        | _ -> emit st (B.mov_rr (phys_of_vreg d) (reg_of st o ~scratch:scratch0)))
    | Ir.I_push o -> emit st (B.push (mop o))
    | Ir.I_pop d -> emit st (B.pop (phys_of_vreg d))
    | Ir.I_load_temp (d, n) -> emit st [ MC.Load_temp (phys_of_vreg d, n) ]
    | Ir.I_store_temp (n, o) ->
        emit st [ MC.Store_temp (n, reg_of st o ~scratch:scratch0) ]
    | Ir.I_check_small_int (o, l) ->
        let r = reg_of st o ~scratch:scratch0 in
        emit st (B.tag_branch MC.Ne r l)
    | Ir.I_check_not_small_int (o, l) ->
        let r = reg_of st o ~scratch:scratch0 in
        emit st (B.tag_branch MC.Eq r l)
    | Ir.I_check_class (o, cid, l) ->
        let r = reg_of st o ~scratch:scratch0 in
        emit st [ MC.Load_class_index (B.class_reg, r) ];
        emit st (B.cmp_branch MC.Ne B.class_reg (MC.I cid) l)
    | Ir.I_check_pointers (o, l) ->
        let r = reg_of st o ~scratch:scratch0 in
        emit st (B.tag_branch MC.Eq r l);
        emit st [ MC.Load_format (B.class_reg, r) ];
        emit st (B.cmp_branch MC.Gt B.class_reg (MC.I 1) l)
    | Ir.I_check_bytes (o, l) ->
        let r = reg_of st o ~scratch:scratch0 in
        emit st (B.tag_branch MC.Eq r l);
        emit st [ MC.Load_format (B.class_reg, r) ];
        emit st (B.cmp_branch MC.Ne B.class_reg (MC.I 2) l)
    | Ir.I_check_indexable (o, l) ->
        let r = reg_of st o ~scratch:scratch0 in
        emit st (B.tag_branch MC.Eq r l);
        emit st [ MC.Load_format (B.class_reg, r) ];
        emit st (B.cmp_branch MC.Lt B.class_reg (MC.I 1) l);
        emit st (B.cmp_branch MC.Gt B.class_reg (MC.I 2) l)
    | Ir.I_untag (d, o) ->
        let r = reg_of st o ~scratch:scratch0 in
        emit_alu st MC.Sar ~dst:(phys_of_vreg d) ~a:r ~b:(MC.I 1)
    | Ir.I_tag (d, o) ->
        let r = reg_of st o ~scratch:scratch0 in
        let d = phys_of_vreg d in
        emit_alu st MC.Shl ~dst:d ~a:r ~b:(MC.I 1);
        emit_alu st MC.Or ~dst:d ~a:d ~b:(MC.I 1)
    | Ir.I_alu (op, d, a, b) ->
        let ra = reg_of st a ~scratch:scratch0 in
        emit_alu st op ~dst:(phys_of_vreg d) ~a:ra ~b:(mop b)
    | Ir.I_jump_overflow l -> emit st (B.ovf_branch ~last:st.last_alu l)
    | Ir.I_check_range (o, l) ->
        let r = reg_of st o ~scratch:scratch0 in
        emit st (B.cmp_branch MC.Gt r (MC.I Vm_objects.Value.max_small_int) l);
        emit st (B.cmp_branch MC.Lt r (MC.I Vm_objects.Value.min_small_int) l)
    | Ir.I_cmp_jump (c, a, b, l) ->
        let ra = reg_of st a ~scratch:scratch0 in
        emit st (B.cmp_branch c ra (mop b) l)
    | Ir.I_jump l -> emit st (B.jmp l)
    | Ir.I_bool_result (c, d, a, b) ->
        let ra = reg_of st a ~scratch:scratch0 in
        let d = phys_of_vreg d in
        let l = fresh_label st in
        emit st
          (B.bool_result c ~dst:d ~a:ra ~b:(mop b) ~t:Ir.true_word
             ~f:Ir.false_word ~label:l);
        emit st [ MC.Label l ]
    | Ir.I_load_slot (d, base, idx) ->
        let b = reg_of st base ~scratch:scratch0 in
        emit st [ MC.Load_slot (phys_of_vreg d, b, mop idx) ]
    | Ir.I_store_slot (base, idx, v) ->
        let b = reg_of st base ~scratch:scratch0 in
        let r = reg_of st v ~scratch:B.class_reg in
        emit st [ MC.Store_slot (b, mop idx, r) ]
    | Ir.I_load_byte (d, base, idx) ->
        let b = reg_of st base ~scratch:scratch0 in
        emit st [ MC.Load_byte (phys_of_vreg d, b, mop idx) ]
    | Ir.I_store_byte (base, idx, v) ->
        let b = reg_of st base ~scratch:scratch0 in
        let r = reg_of st v ~scratch:B.class_reg in
        emit st [ MC.Store_byte (b, mop idx, r) ]
    | Ir.I_load_num_slots (d, o) ->
        emit st
          [ MC.Load_num_slots (phys_of_vreg d, reg_of st o ~scratch:scratch0) ]
    | Ir.I_load_indexable_size (d, o) ->
        emit st
          [
            MC.Load_indexable_size
              (phys_of_vreg d, reg_of st o ~scratch:scratch0);
          ]
    | Ir.I_load_fixed_size (d, o) ->
        emit st
          [ MC.Load_fixed_size (phys_of_vreg d, reg_of st o ~scratch:scratch0) ]
    | Ir.I_load_class_object (d, o) ->
        emit st
          [
            MC.Load_class_object
              (phys_of_vreg d, reg_of st o ~scratch:scratch0);
          ]
    | Ir.I_unbox_float (f, o) ->
        emit st [ MC.Unbox_float (f, reg_of st o ~scratch:scratch0) ]
    | Ir.I_box_float (d, f) -> emit st [ MC.Box_float (phys_of_vreg d, f) ]
    | Ir.I_falu (op, d, a, b) -> emit st [ MC.Falu (op, d, a, b) ]
    | Ir.I_fsqrt (d, s) -> emit st [ MC.Fsqrt (d, s) ]
    | Ir.I_fcmp_jump (c, a, b, l) -> emit st (B.fcmp_branch c a b l)
    | Ir.I_fbool_result (c, d, a, b) ->
        let d = phys_of_vreg d in
        let l = fresh_label st in
        emit st
          (B.fbool_result c ~dst:d ~a ~b ~t:Ir.true_word ~f:Ir.false_word
             ~label:l);
        emit st [ MC.Label l ]
    | Ir.I_cvt_int_float (f, o) ->
        emit st [ MC.Cvt_int_float (f, reg_of st o ~scratch:scratch0) ]
    | Ir.I_trunc_float_int (d, f) ->
        emit st [ MC.Cvt_float_int (phys_of_vreg d, f) ]
    | Ir.I_float_from_bits32 (f, o) ->
        emit st [ MC.Float_from_bits32 (f, reg_of st o ~scratch:scratch0) ]
    | Ir.I_float_to_bits32 (d, f) ->
        emit st [ MC.Float_to_bits32 (phys_of_vreg d, f) ]
    | Ir.I_float_from_bits64 (f, hi, lo) ->
        let rhi = reg_of st hi ~scratch:scratch0 in
        let rlo = reg_of st lo ~scratch:B.class_reg in
        emit st [ MC.Float_from_bits64 (f, rhi, rlo) ]
    | Ir.I_float_to_bits64_hi (d, f) ->
        emit st [ MC.Float_to_bits64_hi (phys_of_vreg d, f) ]
    | Ir.I_float_to_bits64_lo (d, f) ->
        emit st [ MC.Float_to_bits64_lo (phys_of_vreg d, f) ]
    | Ir.I_identity_hash (d, o) ->
        emit st
          [ MC.Identity_hash (phys_of_vreg d, reg_of st o ~scratch:scratch0) ]
    | Ir.I_shallow_copy (d, o) ->
        emit st
          [
            MC.Shallow_copy_op (phys_of_vreg d, reg_of st o ~scratch:scratch0);
          ]
    | Ir.I_make_point (d, a, b) ->
        let ra = reg_of st a ~scratch:scratch0 in
        let rb = reg_of st b ~scratch:B.class_reg in
        emit st [ MC.Make_point_op (phys_of_vreg d, ra, rb) ]
    | Ir.I_make_char (d, o) ->
        emit st
          [ MC.Make_char_op (phys_of_vreg d, reg_of st o ~scratch:scratch0) ]
    | Ir.I_char_value (d, o) ->
        emit st
          [ MC.Char_value_op (phys_of_vreg d, reg_of st o ~scratch:scratch0) ]
    | Ir.I_alloc (d, cid, size) ->
        emit st [ MC.Alloc (phys_of_vreg d, cid, mop size) ]
    | Ir.I_send info -> emit st [ MC.Call_trampoline info ]
    | Ir.I_return o ->
        (match o with
        | Ir.C c -> emit st (B.mov_ri B.result_reg c)
        | _ ->
            emit st
              (B.mov_rr B.result_reg (reg_of st o ~scratch:scratch0)));
        emit st [ MC.Ret ]
    | Ir.I_stop n -> emit st [ MC.Brk n ]
    | Ir.I_spill_store (slot, v) ->
        emit st [ MC.Spill_store (slot, phys_of_vreg v) ]
    | Ir.I_spill_load (d, slot) ->
        emit st [ MC.Spill_load (phys_of_vreg d, slot) ]

  let lower (irs : Ir.ir list) : MC.program =
    let st = { out = []; labels = 0; last_alu = None } in
    List.iter (lower_instr st) irs;
    MC.assemble (List.rev st.out)
end

module X86_gen = Make (Machine.Backend.X86)
module Arm32_gen = Make (Machine.Backend.Arm32)
module Rv32_gen = Make (Machine.Backend.Rv32)

let lower ~(arch : arch) irs =
  match arch with
  | X86 -> X86_gen.lower irs
  | Arm32 -> Arm32_gen.lower irs
  | Rv32 -> Rv32_gen.lower irs
