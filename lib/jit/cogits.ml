(* The four compiler front-ends of the evaluation (§4.1, Table 2), behind
   one interface the differential tester drives. *)

type compiler =
  | Native_method_compiler
  | Simple_stack_cogit
  | Stack_to_register_cogit
  | Register_allocating_cogit
[@@deriving show { with_path = false }, eq, ord]

let name = function
  | Native_method_compiler -> "Native Methods (primitives)"
  | Simple_stack_cogit -> "Simple Stack BC Compiler"
  | Stack_to_register_cogit -> "Stack-to-Register BC Compiler"
  | Register_allocating_cogit -> "Linear-Scan Allocator BC Compiler"

let short_name = function
  | Native_method_compiler -> "native"
  | Simple_stack_cogit -> "simple"
  | Stack_to_register_cogit -> "s2r"
  | Register_allocating_cogit -> "regalloc"

let all = [
  Native_method_compiler;
  Simple_stack_cogit;
  Stack_to_register_cogit;
  Register_allocating_cogit;
]

let bytecode_compilers =
  [ Simple_stack_cogit; Stack_to_register_cogit; Register_allocating_cogit ]

exception Not_compiled of string
(** The compiler has no implementation for this instruction (the paper's
    "missing functionality" differences surface as this exception at
    test-execution time). *)

(* When a unit uses more virtual registers than the machine has temps,
   run it through the allocator — the spill-on-demand behaviour of a real
   code generator.  Units within budget keep the direct 1:1 mapping. *)
let fit_registers (ir : Ir.ir list) : Ir.ir list =
  let max_v =
    List.fold_left
      (fun acc i ->
        let d, u = Ir.def_use i in
        List.fold_left max acc (List.filter (fun v -> v < 100) (d @ u)))
      (-1) ir
  in
  if max_v >= Ir.max_direct_vreg then
    try Linear_scan.rewrite ir
    with Ir.Unsupported_instruction msg -> raise (Not_compiled msg)
  else ir

let bytecode_policy = function
  | Simple_stack_cogit -> Bytecode_compiler.simple_policy
  | Stack_to_register_cogit | Register_allocating_cogit ->
      Bytecode_compiler.stack_to_register_policy
  | Native_method_compiler ->
      invalid_arg "Cogits: native method compiler has no byte-code policy"

(* The front-end's IR before any register allocation — what the static
   verifier's single-assignment and cross-compiler differencing passes
   inspect (allocation legitimately reuses registers).

   Fault-injection hooks (the mutation engine, lib/mutate): when a fault
   targets this compiler, the template selection and the front-end IR are
   rewritten here, so every consumer — allocation, lowering, the static
   verifier, the cross-compiler differ — sees the mutated artifact. *)
let frontend_ir compiler ~defects ~literals ~stack_setup instr : Ir.ir list =
  let short = short_name compiler in
  let instr = Fault.apply_opcode ~compiler:short instr in
  try
    Fault.apply_ir ~compiler:short Fault.Frontend
      (Bytecode_compiler.compile ~defects ~policy:(bytecode_policy compiler)
         ~literals ~stack_setup instr)
  with Ir.Unsupported_instruction msg -> raise (Not_compiled msg)

let frontend_native_ir ~defects prim_id : Ir.ir list =
  match Native_templates.compile ~defects prim_id with
  | ir -> Fault.apply_ir ~compiler:"native" Fault.Frontend ir
  | exception Native_templates.Missing_template id ->
      raise
        (Not_compiled
           (Printf.sprintf "no template for native method %d (%s)" id
              (Interpreter.Primitive_table.name id)))
  | exception Ir.Unsupported_instruction msg -> raise (Not_compiled msg)

(* Compile a byte-code instruction to IR under a compilation-unit schema
   (setup pushes + instruction + markers, Listing 3). *)
let compile_bytecode compiler ~defects ~literals ~stack_setup instr :
    Ir.ir list =
  let ir = frontend_ir compiler ~defects ~literals ~stack_setup instr in
  let final =
    match compiler with
    | Register_allocating_cogit -> (
        try Linear_scan.rewrite ir
        with Ir.Unsupported_instruction msg -> raise (Not_compiled msg))
    | _ -> fit_registers ir
  in
  Fault.apply_ir ~compiler:(short_name compiler) Fault.Final final

(* Compile a byte-code sequence (future-work extension): one unit whose
   simulation stack spans instruction boundaries. *)
let compile_sequence ?lookahead compiler ~defects ~literals ~stack_setup
    instrs : Ir.ir list =
  let policy =
    match compiler with
    | Simple_stack_cogit -> Bytecode_compiler.simple_policy
    | Stack_to_register_cogit | Register_allocating_cogit ->
        Bytecode_compiler.stack_to_register_policy
    | Native_method_compiler ->
        invalid_arg "compile_sequence: native method compiler"
  in
  let short = short_name compiler in
  let instrs = Fault.apply_opcodes ~compiler:short instrs in
  let ir =
    try
      Fault.apply_ir ~compiler:short Fault.Frontend
        (Bytecode_compiler.compile_sequence ?lookahead ~defects ~policy
           ~literals ~stack_setup instrs)
    with Ir.Unsupported_instruction msg -> raise (Not_compiled msg)
  in
  let final =
    match compiler with
    | Register_allocating_cogit -> (
        try Linear_scan.rewrite ir
        with Ir.Unsupported_instruction msg -> raise (Not_compiled msg))
    | _ -> fit_registers ir
  in
  Fault.apply_ir ~compiler:short Fault.Final final

(* Lowering with the machine-code mutation hook.  [Codegen.lower] has no
   compiler parameter; the hook needs one to target a single front-end,
   so every lowering — the pipeline's and the static verifier's — goes
   through here. *)
let lower_for compiler ~arch (ir : Ir.ir list) : Machine.Machine_code.program =
  Fault.apply_machine ~compiler:(short_name compiler) (Codegen.lower ~arch ir)

let compile_sequence_to_machine ?lookahead compiler ~defects ~literals
    ~stack_setup ~arch instrs =
  lower_for compiler ~arch
    (compile_sequence ?lookahead compiler ~defects ~literals ~stack_setup
       instrs)

(* Compile a native method to IR (Listing 4 schema: template + breakpoint
   on the fail path).  Templates always go through the allocator: the
   hand-written templates use virtual registers freely. *)
let compile_native ~defects prim_id : Ir.ir list =
  let ir = frontend_native_ir ~defects prim_id in
  let final =
    try Linear_scan.rewrite ir
    with Ir.Unsupported_instruction msg -> raise (Not_compiled msg)
  in
  Fault.apply_ir ~compiler:"native" Fault.Final final

(* Full pipeline: instruction → machine code for an architecture. *)
let compile_bytecode_to_machine compiler ~defects ~literals ~stack_setup
    ~arch instr =
  lower_for compiler ~arch
    (compile_bytecode compiler ~defects ~literals ~stack_setup instr)

let compile_native_to_machine ~defects ~arch prim_id =
  lower_for Native_method_compiler ~arch (compile_native ~defects prim_id)
