(* Compiler fault injection (the mutation engine's hook layer).

   A mutation operator is a set of optional rewrites over the artifacts
   the compilation pipeline produces: the byte-code template selection
   (which opcode's template the front-end expands), the cogit IR (at the
   front-end stage, before register allocation, or at the final stage
   after it), and the lowered machine code.  Operators themselves live in
   [lib/mutate]; this module only carries the activation state, so the
   pristine pipeline pays one domain-local [None] check per hook.

   Activation is domain-local ([Domain.DLS]): the campaign pool runs
   different mutants concurrently on different domains, and each unit's
   fault must be invisible to its neighbours.  A fault targets exactly
   one front-end (by short name) — mutating all four identically would
   blind the cross-compiler differ, which is itself one of the oracles
   under evaluation. *)

type stage = Frontend | Final
type layer = L_template | L_ir | L_machine

let layer_name = function
  | L_template -> "template"
  | L_ir -> "ir"
  | L_machine -> "machine"

type op = {
  id : string; (* stable operator identifier, e.g. "ir-drop-guard" *)
  layer : layer;
  rewrite_opcode : Bytecodes.Opcode.t -> Bytecodes.Opcode.t option;
  rewrite_ir : stage -> Ir.ir list -> Ir.ir list option;
  rewrite_machine :
    Machine.Machine_code.program -> Machine.Machine_code.program option;
}

let none_opcode _ = None
let none_ir _ _ = None
let none_machine _ = None

type active = {
  op : op;
  target : string; (* Cogits.short_name of the front-end under mutation *)
  fired : bool ref; (* did any rewrite apply during the activation? *)
}

(* One mutable slot per domain.  [with_fault] saves and restores it, so
   nested activations (a mutant unit whose oracle compiles a baseline)
   compose; in practice activations do not nest. *)
let slot : active option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () : active option = !(Domain.DLS.get slot)

let with_fault ~(target : string) (op : op) (f : unit -> 'a) : 'a * bool =
  let cell = Domain.DLS.get slot in
  let saved = !cell in
  let a = { op; target; fired = ref false } in
  cell := Some a;
  Fun.protect
    ~finally:(fun () -> cell := saved)
    (fun () ->
      let r = f () in
      (r, !(a.fired)))

(* A cache-key component distinguishing mutated compilations from
   pristine ones (and from each other).  Every memo whose value depends
   on compiled code — the static-verdict cache, the machine-path cache —
   must fold this into its key, or a mutant would poison the baseline. *)
let cache_tag () =
  match current () with
  | None -> ""
  | Some a -> Printf.sprintf "|mutant:%s:%s" a.target a.op.id

(* --- the hooks, called from Cogits --- *)

let apply_opcode ~(compiler : string) (opc : Bytecodes.Opcode.t) :
    Bytecodes.Opcode.t =
  match current () with
  | Some a when String.equal a.target compiler -> (
      match a.op.rewrite_opcode opc with
      | Some opc' ->
          a.fired := true;
          opc'
      | None -> opc)
  | _ -> opc

(* Sequences: rewrite only the first opcode the operator applies to, so
   one mutant is one planted fault. *)
let apply_opcodes ~(compiler : string) (opcs : Bytecodes.Opcode.t list) :
    Bytecodes.Opcode.t list =
  match current () with
  | Some a when String.equal a.target compiler ->
      let done_ = ref false in
      List.map
        (fun opc ->
          if !done_ then opc
          else
            match a.op.rewrite_opcode opc with
            | Some opc' ->
                a.fired := true;
                done_ := true;
                opc'
            | None -> opc)
        opcs
  | _ -> opcs

let apply_ir ~(compiler : string) (stage : stage) (ir : Ir.ir list) :
    Ir.ir list =
  match current () with
  | Some a when String.equal a.target compiler -> (
      match a.op.rewrite_ir stage ir with
      | Some ir' ->
          a.fired := true;
          ir'
      | None -> ir)
  | _ -> ir

let apply_machine ~(compiler : string) (p : Machine.Machine_code.program) :
    Machine.Machine_code.program =
  match current () with
  | Some a when String.equal a.target compiler -> (
      match a.op.rewrite_machine p with
      | Some p' ->
          a.fired := true;
          p'
      | None -> p)
  | _ -> p
