(** Closed integer intervals for bound propagation.  Never empty;
    emptiness is represented by [None] at use sites. *)

type t = { lo : int; hi : int }

val make : int -> int -> t option
(** [None] when [lo > hi]. *)

val exactly : int -> t
val lo : t -> int
val hi : t -> int
val contains : t -> int -> bool
val is_singleton : t -> bool
val inter : t -> t -> t option
val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t

val scale : int -> t -> t
(** Multiply both bounds by a (possibly negative) constant. *)

val width : t -> int

val shift_left : int -> t -> t
(** Exact bounds of [v lsl k] for a constant [0 <= k <= 30]. *)

val shift_right : int -> t -> t
(** Exact bounds of [v asr k] (floor division by [2^k]) for [k >= 0]. *)

val mask : int -> t -> t
(** Bounds of [v land m] for a low mask [m = 2^k - 1]: the identity when
    the interval already lies within [0, m], else the full [0, m]
    range. *)

val tighten_cmp : Symbolic.Sym_expr.cmp -> t -> t -> t option
(** Tighten the left interval so that [a ⋈ b] can hold for some value of
    [b]; [None] when no value remains. *)

val sample : t -> rng:Random.State.t -> int
(** A random member, biased toward small magnitudes and endpoints on
    wide intervals. *)

val pp : t Fmt.t
val equal : t -> t -> bool
val show : t -> string
