(** The decision procedure over the semantic constraint language (§3.3).

    Specialised to the constraint shapes the shadow machine emits, in the
    DPLL(T) spirit: bounded expansion of the few disjunctions that arise
    (negated small-int range checks), a type/class assignment pass over
    oop-sorted terms, interval propagation over the integer atoms, and a
    witness search (biased candidates, bounded random sampling, linear
    repair).

    Mirrors the paper's solver limits (§4.3): conjunctions containing
    bitwise operations or constants beyond 56-bit precision answer
    [Unknown], which the explorer and the differential tester treat as
    curated-out.  The machine-level tag/shift/mask operators emitted by
    the JIT lowering are first rewritten to exact arithmetic
    counterparts (see {!normalize}), so conditions arising from
    translation validation of compiled code stay inside the fragment. *)

type verdict =
  | Sat of Model.t  (** concrete witnesses for every atom *)
  | Unsat
  | Unknown of string  (** outside the supported fragment *)

val normalize : Symbolic.Sym_expr.t -> Symbolic.Sym_expr.t
(** Rewrite the bit-level operators with exact arithmetic counterparts
    (valid for all two's-complement integers; [asr] and [land] against a
    low mask are floor division / floor modulus):
    [a lsl k = a * 2^k], [a asr k = a / 2^k] (floor),
    [a land (2^k - 1) = a mod 2^k], [(2a) lor 1 = 2a + 1]. *)

val solve : ?seed:int -> Symbolic.Sym_expr.t list -> verdict
(** Conjunction satisfiability.  Deterministic for a given [seed].
    Memoized: the verdict is cached under the normalized conjunction
    (plus seed) in a table shared read-mostly across domains, so
    repeated queries — the same subject explored for several compilers,
    curation re-solves, validator equivalence checks — run the decision
    procedure once.  Memoization never changes a verdict (see
    {!solve_uncached} and the qcheck property in [test_exec]). *)

val solve_uncached : ?seed:int -> Symbolic.Sym_expr.t list -> verdict
(** {!solve} bypassing the memo table: always runs the decision
    procedure.  The determinism oracle for the memo. *)

val cache_stats : unit -> Exec.Memo.stats
(** Hit/miss counters of the solver memo since the last
    {!reset_cache}.  [hits + misses] = number of {!solve} calls. *)

val queries_posed : unit -> int
(** Number of {!solve} calls since the last {!reset_cache}, counted by
    an atomic independent of the memo's own accounting — the oracle for
    the [hits + misses = queries] consistency check in the bench
    harness and CI smoke. *)

val reset_cache : unit -> unit
(** Drop all cached verdicts and zero the counters (bench phases call
    this so each configuration is measured cold). *)
