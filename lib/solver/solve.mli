(** The decision procedure over the semantic constraint language (§3.3).

    Specialised to the constraint shapes the shadow machine emits, in the
    DPLL(T) spirit: bounded expansion of the few disjunctions that arise
    (negated small-int range checks), a type/class assignment pass over
    oop-sorted terms, interval propagation over the integer atoms, and a
    witness search (biased candidates, bounded random sampling, linear
    repair).

    Mirrors the paper's solver limits (§4.3): conjunctions containing
    bitwise operations or constants beyond 56-bit precision answer
    [Unknown], which the explorer and the differential tester treat as
    curated-out.  The machine-level tag/shift/mask operators emitted by
    the JIT lowering are first rewritten to exact arithmetic
    counterparts (see {!normalize}), so conditions arising from
    translation validation of compiled code stay inside the fragment. *)

type verdict =
  | Sat of Model.t  (** concrete witnesses for every atom *)
  | Unsat
  | Unknown of string  (** outside the supported fragment *)

val normalize : Symbolic.Sym_expr.t -> Symbolic.Sym_expr.t
(** Rewrite the bit-level operators with exact arithmetic counterparts
    (valid for all two's-complement integers; [asr] and [land] against a
    low mask are floor division / floor modulus):
    [a lsl k = a * 2^k], [a asr k = a / 2^k] (floor),
    [a land (2^k - 1) = a mod 2^k], [(2a) lor 1 = 2a + 1]. *)

(** {2 Canonical conjunctions}

    A [prepared] value is a path condition in canonical form: conjuncts
    bit-normalized, [Not] pushed through integer comparisons,
    trivially-true conjuncts dropped, duplicates collapsed, the rest
    sorted — so semantically equal conjunctions built in any order share
    one {!fingerprint}, which is exactly the key the memo and the
    persistent store use.  It also tracks sound syntactic refutations
    (complement pairs, false constant comparisons, empty constant-bound
    meets); {!prepared_unsat} lets the explorer prune a child without
    any solver call. *)

type prepared

val empty_prepared : prepared

val extend : prepared -> Symbolic.Sym_expr.t -> prepared
(** Add one conjunct.  O(size of the conjunction); building a child
    from its prefix costs one insertion, not a re-canonicalisation. *)

val prepare : Symbolic.Sym_expr.t list -> prepared
val fingerprint : prepared -> string

val prepared_unsat : prepared -> bool
(** Syntactically refuted — sound: [true] implies the conjunction is
    unsatisfiable, never the reverse. *)

val normalize_conjunction :
  Symbolic.Sym_expr.t list -> Symbolic.Sym_expr.t list
(** The canonical conjunct list itself (idempotent and
    solve-preserving; both qcheck-checked in [test_solver]). *)

val solve : ?seed:int -> Symbolic.Sym_expr.t list -> verdict
(** Conjunction satisfiability.  Deterministic for a given [seed].
    Memoized: the verdict is cached under the canonical conjunction's
    fingerprint (plus seed) in a table shared read-mostly across
    domains, so repeated queries — the same subject explored for
    several compilers, curation, validator equivalence checks — run the
    decision procedure once.  When a {!Exec.Store} is active the
    verdict also persists across processes.  Caching never changes a
    verdict (see {!solve_uncached} and the qcheck property in
    [test_exec]). *)

val solve_prepared : ?seed:int -> prepared -> verdict
(** {!solve} for an already-canonical conjunction (skips
    re-preparation; same counters, same caches, same verdicts). *)

val solve_uncached : ?seed:int -> Symbolic.Sym_expr.t list -> verdict
(** {!solve} bypassing the memo table and the store: always runs the
    decision procedure (after the same canonicalisation).  The
    determinism oracle for the caches. *)

val cache_stats : unit -> Exec.Memo.stats
(** Hit/miss counters of the solver memo since the last
    {!reset_cache}.  [hits + misses] = number of {!solve} calls. *)

val queries_posed : unit -> int
(** Number of {!solve} calls since the last {!reset_cache}, counted by
    an atomic independent of the memo's own accounting — the oracle for
    the [hits + misses = queries] consistency check in the bench
    harness and CI smoke. *)

val reset_cache : unit -> unit
(** Drop all cached verdicts and zero the counters (bench phases call
    this so each configuration is measured cold). *)
