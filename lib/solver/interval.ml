(* Closed integer intervals with the arithmetic needed for bound
   propagation.  An interval is never empty; emptiness is represented by
   [None] at the use sites. *)

type t = { lo : int; hi : int } [@@deriving show { with_path = false }, eq]

let make lo hi = if lo > hi then None else Some { lo; hi }
let exactly v = { lo = v; hi = v }
let lo t = t.lo
let hi t = t.hi
let contains t v = t.lo <= v && v <= t.hi
let is_singleton t = t.lo = t.hi

let inter a b = make (max a.lo b.lo) (min a.hi b.hi)

let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }
let neg a = { lo = -a.hi; hi = -a.lo }
let sub a b = add a (neg b)

let scale k a =
  if k >= 0 then { lo = k * a.lo; hi = k * a.hi }
  else { lo = k * a.hi; hi = k * a.lo }

let width t = t.hi - t.lo

(* Bit-style helpers for the shift/mask fast path.  Shifting by a
   constant is exact on both bounds ([asr] is floor division, which is
   monotone); masking by [2^k - 1] is the identity when the interval
   already lies inside [0, m] and widens to the full residue range
   otherwise. *)
let shift_left k a = scale (1 lsl k) a
let shift_right k a = { lo = a.lo asr k; hi = a.hi asr k }
let mask m a = if a.lo >= 0 && a.hi <= m then a else { lo = 0; hi = m }

(* Tighten [a] so that [a ⋈ b] can hold for some value of [b]. *)
let tighten_cmp (c : Symbolic.Sym_expr.cmp) a b =
  match c with
  | Ceq -> inter a b
  | Cne -> if is_singleton a && is_singleton b && a.lo = b.lo then None else Some a
  | Clt -> make a.lo (min a.hi (b.hi - 1))
  | Cle -> make a.lo (min a.hi b.hi)
  | Cgt -> make (max a.lo (b.lo + 1)) a.hi
  | Cge -> make (max a.lo b.lo) a.hi

let sample t ~rng =
  if is_singleton t then t.lo
  else
    let w = width t in
    if w <= 0 || w >= 1 lsl 29 then
      (* Wide interval: bias toward small magnitudes and the endpoints. *)
      match Random.State.int rng 6 with
      | 0 -> t.lo
      | 1 -> t.hi
      | 2 -> max t.lo (min t.hi 0)
      | 3 -> max t.lo (min t.hi 1)
      | 4 -> max t.lo (min t.hi (Random.State.int rng 1024))
      | _ -> max t.lo (min t.hi (-Random.State.int rng 1024))
    else t.lo + Random.State.int rng (w + 1)

let pp ppf t = Fmt.pf ppf "[%d, %d]" t.lo t.hi
