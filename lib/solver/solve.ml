(* The decision procedure.

   Input: a conjunction of boolean-sorted semantic constraints (a path
   condition).  Output: [Sat model] with concrete witnesses for every oop
   / int / float atom, [Unsat], or [Unknown reason] when the conjunction
   falls outside the supported fragment (bitwise operations, >56-bit
   constants, shapes our search cannot crack).

   Architecture, in the DPLL(T) spirit but specialised to the constraint
   shapes the shadow machine actually emits:

   1. expansion of the few disjunctions that arise (negated small-int
      range checks) into a bounded set of conjunctive branches;
   2. a *type/class assignment* pass over oop-sorted terms (the theory of
      VM object shapes): tag tests, class tests and structure predicates
      either conflict (Unsat) or resolve to an object description;
   3. interval propagation over the integer atoms (untagged values,
      object sizes, byte reads) through linear forms;
   4. a witness search over the remaining integer/float atoms: biased
      candidates, bounded random sampling, and a linear repair loop. *)

open Symbolic

type verdict = Sat of Model.t | Unsat | Unknown of string

(* ------------------------------------------------------------------ *)
(* Literals                                                            *)
(* ------------------------------------------------------------------ *)

(* [F_class_obj] is reachable through class-id literals only, but kept as
   an explicit flag for symmetry with the type-info record. *)
type flag_lit =
  | F_small
  | F_float
  | F_pointers
  | F_bytes
  | F_indexable
  | F_class_obj [@warning "-37"]
  | F_describes_indexable

type lit =
  | L_flag of flag_lit * Sym_expr.t * bool (* predicate, term, polarity *)
  | L_class of Sym_expr.t * int * bool (* term has class id (or not) *)
  | L_cmp of Sym_expr.cmp * Sym_expr.t * Sym_expr.t (* integer comparison *)
  | L_fcmp of Sym_expr.cmp * Sym_expr.t * Sym_expr.t (* float comparison *)
  | L_fnan of Sym_expr.t * bool
  | L_finf of Sym_expr.t * bool

exception Give_up of string

(* Class lookups only ever concern well-known classes here; user classes
   never appear in constraints (they are invented by the materialiser).
   Built eagerly at module load: a [lazy] would be forced concurrently
   from several domains, and OCaml 5 lazies are not domain-safe. *)
let well_known_classes = Vm_objects.Class_table.create ()
let lookup_class cid = Vm_objects.Class_table.lookup well_known_classes cid

let min_small = Vm_objects.Value.min_small_int
let max_small = Vm_objects.Value.max_small_int

(* Singleton oops are deterministic (installed first in every heap). *)
let nil_oop = 8
let true_oop = 16
let false_oop = 24

(* ------------------------------------------------------------------ *)
(* Bit-operator normalisation                                          *)
(* ------------------------------------------------------------------ *)

(* The JIT lowering manipulates tagged words with shifts, masks and the
   or-1 tag write.  Each has an exact arithmetic counterpart, valid for
   every integer (two's complement, [asr]/[land] against a low mask are
   floor division / floor modulus):

     a lsl k          =  a * 2^k
     a asr k          =  floor(a / 2^k)
     a land (2^k - 1) =  a mod 2^k
     (2a) lor 1       =  2a + 1

   Rewriting them up front lets the arithmetic core reason about
   machine-level tag manipulation instead of giving the whole condition
   up as "bitwise".  Anything the rules do not reach (variable shift
   distances, general masks, xor) still trips the bitwise gate below. *)
let is_low_mask m = m >= 0 && m land (m + 1) = 0

let rec normalize (e : Sym_expr.t) : Sym_expr.t =
  match e with
  | Var _ | Int_const _ | Float_const _ | Bool_const _ | Oop_const _ -> e
  | Bit_or (a, b) -> (
      let a = normalize a and b = normalize b in
      match (a, b) with
      | Mul (x, Int_const 2), Int_const 1
      | Mul (Int_const 2, x), Int_const 1
      | Int_const 1, Mul (x, Int_const 2)
      | Int_const 1, Mul (Int_const 2, x) ->
          Add (Mul (x, Int_const 2), Int_const 1)
      | _ -> Bit_or (a, b))
  | Shift_left (a, Int_const k) when k >= 0 && k <= 30 -> (
      match normalize a with
      | Int_const c -> Int_const (c lsl k)
      | a -> Mul (a, Int_const (1 lsl k)))
  | Shift_right (a, Int_const k) when k >= 0 && k <= 62 ->
      Div (normalize a, Int_const (1 lsl k))
  | Bit_and (a, Int_const m) when is_low_mask m ->
      Mod (normalize a, Int_const (m + 1))
  | Bit_and (Int_const m, a) when is_low_mask m ->
      Mod (normalize a, Int_const (m + 1))
  | Add (a, b) -> Add (normalize a, normalize b)
  | Sub (a, b) -> Sub (normalize a, normalize b)
  | Mul (a, b) -> Mul (normalize a, normalize b)
  | Div (a, b) -> Div (normalize a, normalize b)
  | Mod (a, b) -> Mod (normalize a, normalize b)
  | Quo (a, b) -> Quo (normalize a, normalize b)
  | Rem (a, b) -> Rem (normalize a, normalize b)
  | Neg a -> Neg (normalize a)
  | Abs a -> Abs (normalize a)
  | Bit_and (a, b) -> Bit_and (normalize a, normalize b)
  | Bit_xor (a, b) -> Bit_xor (normalize a, normalize b)
  | Shift_left (a, b) -> Shift_left (normalize a, normalize b)
  | Shift_right (a, b) -> Shift_right (normalize a, normalize b)
  | Integer_value_of a -> Integer_value_of (normalize a)
  | Integer_object_of a -> Integer_object_of (normalize a)
  | Float_value_of a -> Float_value_of (normalize a)
  | Float_object_of a -> Float_object_of (normalize a)
  | Bool_object_of a -> Bool_object_of (normalize a)
  | Char_object_of a -> Char_object_of (normalize a)
  | Char_value_of a -> Char_value_of (normalize a)
  | Class_object_of a -> Class_object_of (normalize a)
  | Class_index_of a -> Class_index_of (normalize a)
  | Num_slots_of a -> Num_slots_of (normalize a)
  | Indexable_size_of a -> Indexable_size_of (normalize a)
  | Fixed_size_of a -> Fixed_size_of (normalize a)
  | Identity_hash_of a -> Identity_hash_of (normalize a)
  | Slot_at (a, i) -> Slot_at (normalize a, normalize i)
  | Byte_at (a, i) -> Byte_at (normalize a, normalize i)
  | Point_of (a, b) -> Point_of (normalize a, normalize b)
  | Shallow_copy_of a -> Shallow_copy_of (normalize a)
  | Int_to_float a -> Int_to_float (normalize a)
  | F_unop (op, a) -> F_unop (op, normalize a)
  | F_binop (op, a, b) -> F_binop (op, normalize a, normalize b)
  | Is_small_int a -> Is_small_int (normalize a)
  | Is_float_object a -> Is_float_object (normalize a)
  | Has_class (a, c) -> Has_class (normalize a, c)
  | Describes_indexable_class a -> Describes_indexable_class (normalize a)
  | Is_in_small_int_range a -> Is_in_small_int_range (normalize a)
  | Is_pointers a -> Is_pointers (normalize a)
  | Is_bytes a -> Is_bytes (normalize a)
  | Is_indexable a -> Is_indexable (normalize a)
  | Cmp (c, a, b) -> Cmp (c, normalize a, normalize b)
  | F_cmp (c, a, b) -> F_cmp (c, normalize a, normalize b)
  | Oop_eq (a, b) -> Oop_eq (normalize a, normalize b)
  | F_is_nan a -> F_is_nan (normalize a)
  | F_is_infinite a -> F_is_infinite (normalize a)
  | Not a -> Not (normalize a)
  | And (a, b) -> And (normalize a, normalize b)
  | Or (a, b) -> Or (normalize a, normalize b)
  | _ -> e (* float bit views: left to the precision/bitwise gates *)

(* Expand a condition into a list of alternative literal lists
   (a tiny DNF).  Most conditions expand to a single branch; negated
   range checks expand to two. *)
let rec expand (cond : Sym_expr.t) ~(pol : bool) : lit list list =
  match cond with
  | Bool_const b -> if b = pol then [ [] ] else []
  | Not e -> expand e ~pol:(not pol)
  | And (a, b) ->
      if pol then
        let la = expand a ~pol:true and lb = expand b ~pol:true in
        List.concat_map (fun x -> List.map (fun y -> x @ y) lb) la
      else expand a ~pol:false @ expand b ~pol:false
  | Or (a, b) ->
      if pol then expand a ~pol:true @ expand b ~pol:true
      else
        let la = expand a ~pol:false and lb = expand b ~pol:false in
        List.concat_map (fun x -> List.map (fun y -> x @ y) lb) la
  | Is_small_int t -> [ [ L_flag (F_small, t, pol) ] ]
  | Is_float_object t -> [ [ L_flag (F_float, t, pol) ] ]
  | Is_pointers t -> [ [ L_flag (F_pointers, t, pol) ] ]
  | Is_bytes t -> [ [ L_flag (F_bytes, t, pol) ] ]
  | Is_indexable t -> [ [ L_flag (F_indexable, t, pol) ] ]
  | Describes_indexable_class t ->
      [ [ L_flag (F_describes_indexable, t, pol) ] ]
  | Has_class (t, c) -> [ [ L_class (t, c, pol) ] ]
  | Is_in_small_int_range e ->
      if pol then
        [
          [
            L_cmp (Cge, e, Int_const min_small);
            L_cmp (Cle, e, Int_const max_small);
          ];
        ]
      else
        (* ¬(min <= e <= max)  ≡  e > max  ∨  e < min *)
        [
          [ L_cmp (Cgt, e, Int_const max_small) ];
          [ L_cmp (Clt, e, Int_const min_small) ];
        ]
  | Cmp (c, a, b) ->
      if pol then [ [ L_cmp (c, a, b) ] ]
      else [ [ L_cmp (negate_cmp c, a, b) ] ]
  | F_cmp (c, a, b) ->
      if pol then [ [ L_fcmp (c, a, b) ] ]
      else [ [ L_fcmp (negate_cmp c, a, b) ] ]
  | F_is_nan t -> [ [ L_fnan (t, pol) ] ]
  | F_is_infinite t -> [ [ L_finf (t, pol) ] ]
  | Oop_eq (a, b) -> expand_oop_eq a b ~pol
  | other ->
      raise
        (Give_up
           (Printf.sprintf "unsupported condition shape: %s"
              (Sym_expr.to_string other)))

and expand_oop_eq a b ~pol =
  (* Identity against a well-known singleton reduces to a class test
     (each singleton class has exactly one instance). *)
  let singleton_class v =
    let open Vm_objects in
    if Value.is_pointer v then
      match Value.pointer_address v with
      | a when a = nil_oop -> Some Class_table.undefined_object_id
      | a when a = true_oop -> Some Class_table.true_id
      | a when a = false_oop -> Some Class_table.false_id
      | _ -> None
    else None
  in
  match (a, b) with
  | Oop_const c, t | t, Oop_const c -> (
      match singleton_class c with
      | Some cls -> [ [ L_class (t, cls, pol) ] ]
      | None ->
          raise (Give_up "identity constraint against arbitrary object"))
  | _ -> raise (Give_up "identity constraint between two unknowns")

and negate_cmp : Sym_expr.cmp -> Sym_expr.cmp = function
  | Ceq -> Cne
  | Cne -> Ceq
  | Clt -> Cge
  | Cle -> Cgt
  | Cgt -> Cle
  | Cge -> Clt

(* ------------------------------------------------------------------ *)
(* Type / class assignment over oop terms                              *)
(* ------------------------------------------------------------------ *)

type tri = Yes | No | Dunno

type type_info = {
  mutable small : tri;
  mutable float : tri;
  mutable pointers : tri;
  mutable bytes : tri;
  mutable indexable : tri;
  mutable class_obj : tri;
  mutable describes_indexable : tri;
  mutable class_eq : int option;
  mutable class_ne : int list;
}

let fresh_info () =
  {
    small = Dunno;
    float = Dunno;
    pointers = Dunno;
    bytes = Dunno;
    indexable = Dunno;
    class_obj = Dunno;
    describes_indexable = Dunno;
    class_eq = None;
    class_ne = [];
  }

exception Conflict

let set_tri info get set b =
  match (get info, b) with
  | Dunno, true -> set info Yes
  | Dunno, false -> set info No
  | Yes, false | No, true -> raise Conflict
  | Yes, true | No, false -> ()

(* Choose a concrete class consistent with the accumulated flags. *)
let resolve_info info : Model.oop_desc =
  let open Vm_objects.Class_table in
  let excluded c = List.mem c info.class_ne in
  let class_known c =
    (* Validate every accumulated flag against the chosen class's actual
       format, then build its description. *)
    let is v b = match v with Yes -> b | No -> not b | Dunno -> true in
    if excluded c then raise Conflict;
    let validate ~small ~flt ~ptr ~byt ~idx ~cls =
      if
        not
          (is info.small small && is info.float flt && is info.pointers ptr
         && is info.bytes byt && is info.indexable idx
         && is info.class_obj cls)
      then raise Conflict
    in
    if c = small_integer_id then begin
      validate ~small:true ~flt:false ~ptr:false ~byt:false ~idx:false
        ~cls:false;
      Model.D_small_int 0
    end
    else if c = boxed_float_id then begin
      validate ~small:false ~flt:true ~ptr:false ~byt:false ~idx:false
        ~cls:false;
      Model.D_float 1.5
    end
    else
      match lookup_class c with
      | None -> raise Conflict
      | Some desc ->
          let fmt = Vm_objects.Class_desc.format desc in
          validate ~small:false ~flt:false
            ~ptr:(Vm_objects.Objformat.is_pointers fmt)
            ~byt:(Vm_objects.Objformat.is_bytes fmt)
            ~idx:(Vm_objects.Objformat.is_variable fmt)
            ~cls:(c = class_class_id);
          if c = undefined_object_id then Model.D_nil
          else if c = true_id then Model.D_true
          else if c = false_id then Model.D_false
          else if c = class_class_id then
            Model.D_class
              {
                described_class_id =
                  (if info.describes_indexable = Yes then array_id
                   else object_id);
              }
          else if Vm_objects.Objformat.is_bytes fmt then
            Model.D_byte_object { class_id = Some c; size = 0 }
          else
            Model.D_object
              {
                class_id = Some c;
                num_slots = Vm_objects.Objformat.fixed_size fmt;
              }
  in
  match info.class_eq with
  | Some c -> class_known c
  | None ->
      if info.small = Yes then begin
        if info.float = Yes || info.pointers = Yes || info.bytes = Yes
           || info.indexable = Yes || info.class_obj = Yes
           || excluded small_integer_id
        then raise Conflict;
        Model.D_small_int 0
      end
      else if info.float = Yes then begin
        if info.pointers = Yes || info.bytes = Yes || info.indexable = Yes
           || info.class_obj = Yes || excluded boxed_float_id
        then raise Conflict;
        Model.D_float 1.5
      end
      else if info.class_obj = Yes then begin
        if info.bytes = Yes || info.indexable = Yes || excluded class_class_id
        then raise Conflict;
        Model.D_class
          {
            described_class_id =
              (if info.describes_indexable = Yes then array_id else object_id);
          }
      end
      else if info.bytes = Yes then begin
        (* byte objects are variable-format: always indexable, never
           pointers *)
        if info.pointers = Yes || info.indexable = No then raise Conflict;
        let candidates = [ byte_array_id; byte_string_id; external_address_id ] in
        match List.find_opt (fun c -> not (excluded c)) candidates with
        | Some c -> Model.D_byte_object { class_id = Some c; size = 0 }
        | None -> raise Conflict
      end
      else if info.indexable = Yes then begin
        (* an indexable object is pointer-indexable (Array) or
           byte-indexable; respect the pointers/bytes flags *)
        if info.pointers = No || info.bytes = Yes then begin
          (* an indexable non-pointers object must be a byte object *)
          if info.pointers = Yes || info.bytes = No then raise Conflict;
          let candidates =
            [ byte_array_id; byte_string_id; external_address_id ]
          in
          match List.find_opt (fun c -> not (excluded c)) candidates with
          | Some c -> Model.D_byte_object { class_id = Some c; size = 0 }
          | None -> raise Conflict
        end
        else if excluded array_id then raise Conflict
        else Model.D_object { class_id = Some array_id; num_slots = 0 }
      end
      else if info.pointers = Yes then
        (* A plain pointers object; the materialiser invents a class with
           the right number of named slots. *)
        Model.D_object { class_id = None; num_slots = 0 }
      else if info.small <> No && not (excluded small_integer_id) then
        (* Unconstrained (or only negatively constrained): prefer an
           immediate, which satisfies every remaining negative flag. *)
        Model.D_small_int 0
      else if info.float <> No && not (excluded boxed_float_id) then
        Model.D_float 1.5
      else if info.pointers <> No then
        (* the invented class never collides with excluded ids *)
        Model.D_object { class_id = None; num_slots = 0 }
      else if info.bytes <> No && info.indexable <> No then begin
        match
          List.find_opt
            (fun c -> not (excluded c))
            [ byte_array_id; byte_string_id; external_address_id ]
        with
        | Some c -> Model.D_byte_object { class_id = Some c; size = 0 }
        | None -> raise Conflict
      end
      else
        (* Not small, not float, not pointers, not bytes: only
           compiled-method-shaped objects remain, which the materialiser
           does not invent — treat as unsatisfiable (sound but
           incomplete; such shapes never arise from the interpreter). *)
        raise Conflict

(* ------------------------------------------------------------------ *)
(* Integer / float atoms and expression evaluation                     *)
(* ------------------------------------------------------------------ *)

(* Default interval per atom shape. *)
let base_interval (e : Sym_expr.t) : Interval.t =
  let iv lo hi = { Interval.lo; hi } in
  match e with
  | Integer_value_of _ | Var _ -> iv min_small max_small
  | Indexable_size_of _ -> iv 0 4096
  | Num_slots_of _ -> iv 0 64
  | Fixed_size_of _ -> iv 0 64
  | Byte_at _ -> iv 0 255
  | Identity_hash_of _ -> iv 0 0x3FFFFF
  | Char_value_of _ -> iv 0 0x10FFFF
  | Class_index_of _ -> iv 0 1024
  | _ -> iv min_small max_small

let eval_int = Eval.eval_int
let eval_float = Eval.eval_float
let is_int_atom = Eval.is_int_atom
let is_float_atom = Eval.is_float_atom

let lit_holds env = function
  | L_cmp (c, a, b) -> Eval.cmp_holds c (eval_int env a) (eval_int env b)
  | L_fcmp (c, a, b) -> Eval.fcmp_holds c (eval_float env a) (eval_float env b)
  | L_fnan (t, pol) -> Float.is_nan (eval_float env t) = pol
  | L_finf (t, pol) -> (Float.abs (eval_float env t) = Float.infinity) = pol
  | L_flag _ | L_class _ -> true (* handled by the type pass *)

(* ------------------------------------------------------------------ *)
(* Linear forms (for propagation and repair)                           *)
(* ------------------------------------------------------------------ *)

(* e as [Σ coeff·atom + const], if it is linear. *)
let rec linear_form (e : Sym_expr.t) : ((Sym_expr.t * int) list * int) option =
  if is_int_atom e then Some ([ (e, 1) ], 0)
  else
    match e with
    | Int_const c -> Some ([], c)
    | Add (a, b) -> combine a b 1
    | Sub (a, b) -> combine a b (-1)
    | Neg a ->
        Option.map
          (fun (ts, c) -> (List.map (fun (t, k) -> (t, -k)) ts, -c))
          (linear_form a)
    | Mul (a, Int_const k) | Mul (Int_const k, a) ->
        Option.map
          (fun (ts, c) -> (List.map (fun (t, q) -> (t, q * k)) ts, c * k))
          (linear_form a)
    | _ -> None

and combine a b sign =
  match (linear_form a, linear_form b) with
  | Some (ta, ca), Some (tb, cb) ->
      let merged =
        List.fold_left
          (fun acc (t, k) ->
            let k = sign * k in
            match List.assoc_opt t acc with
            | Some k0 -> (t, k0 + k) :: List.remove_assoc t acc
            | None -> (t, k) :: acc)
          ta tb
      in
      Some (List.filter (fun (_, k) -> k <> 0) merged, ca + (sign * cb))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The conjunction solver                                              *)
(* ------------------------------------------------------------------ *)

type conj_result = C_sat of Model.t | C_unsat | C_unknown of string

let collect_oop_terms lits =
  let terms = Hashtbl.create 16 in
  let note t = if not (Hashtbl.mem terms t) then Hashtbl.add terms t (fresh_info ()) in
  let rec note_subterms (e : Sym_expr.t) =
    (* Int atoms carry an oop argument that must also get a description. *)
    (match e with
    | Integer_value_of t | Indexable_size_of t | Num_slots_of t
    | Fixed_size_of t | Identity_hash_of t | Char_value_of t
    | Class_index_of t | Float_value_of t ->
        note t
    | Byte_at (t, idx) ->
        note t;
        note_subterms idx
    | Slot_at (t, idx) ->
        note e;
        note t;
        note_subterms idx
    | _ -> ());
    List.iter note_subterms (Limits.subexprs e)
  in
  List.iter
    (fun l ->
      match l with
      | L_flag (_, t, _) | L_class (t, _, _) ->
          note t;
          note_subterms t
      | L_cmp (_, a, b) | L_fcmp (_, a, b) ->
          note_subterms a;
          note_subterms b
      | L_fnan (t, _) | L_finf (t, _) -> note_subterms t)
    lits;
  terms

let apply_type_lits terms lits =
  let info t =
    match Hashtbl.find_opt terms t with
    | Some i -> i
    | None ->
        let i = fresh_info () in
        Hashtbl.add terms t i;
        i
  in
  List.iter
    (fun l ->
      match l with
      | L_flag (f, t, pol) -> (
          let i = info t in
          match f with
          | F_small -> set_tri i (fun i -> i.small) (fun i v -> i.small <- v) pol
          | F_float -> set_tri i (fun i -> i.float) (fun i v -> i.float <- v) pol
          | F_pointers ->
              set_tri i (fun i -> i.pointers) (fun i v -> i.pointers <- v) pol
          | F_bytes -> set_tri i (fun i -> i.bytes) (fun i v -> i.bytes <- v) pol
          | F_indexable ->
              set_tri i (fun i -> i.indexable) (fun i v -> i.indexable <- v) pol
          | F_class_obj ->
              set_tri i (fun i -> i.class_obj) (fun i v -> i.class_obj <- v) pol
          | F_describes_indexable ->
              set_tri i
                (fun i -> i.describes_indexable)
                (fun i v -> i.describes_indexable <- v)
                pol)
      | L_class (t, c, true) -> (
          let i = info t in
          match i.class_eq with
          | None ->
              if List.mem c i.class_ne then raise Conflict else i.class_eq <- Some c
          | Some c0 -> if c0 <> c then raise Conflict)
      | L_class (t, c, false) -> (
          let i = info t in
          match i.class_eq with
          | Some c0 when c0 = c -> raise Conflict
          | _ -> i.class_ne <- c :: i.class_ne)
      | L_cmp _ | L_fcmp _ | L_fnan _ | L_finf _ -> ())
    lits;
  (* Class-object predicates double as class constraints. *)
  Hashtbl.iter
    (fun _ i ->
      if i.class_obj = Yes then begin
        match i.class_eq with
        | None -> i.class_eq <- Some Vm_objects.Class_table.class_class_id
        | Some c when c = Vm_objects.Class_table.class_class_id -> ()
        | Some _ -> raise Conflict
      end)
    terms

(* Atom constraints implied by the type assignment. *)
let typed_interval descs (atom : Sym_expr.t) : Interval.t =
  let base = base_interval atom in
  let desc_of t = Hashtbl.find_opt descs t in
  match atom with
  | Indexable_size_of t -> (
      match desc_of t with
      | Some (Model.D_object { class_id = Some cid; num_slots }) -> (
          match lookup_class cid with
          | Some d when Vm_objects.Class_desc.is_variable d -> base
          | Some _ -> Interval.exactly 0
          | None -> ignore num_slots; base)
      | Some (Model.D_object { class_id = None; _ }) -> Interval.exactly 0
      | Some (Model.D_byte_object _) -> base
      | Some (Model.D_small_int _ | Model.D_float _) -> Interval.exactly 0
      | Some (Model.D_nil | Model.D_true | Model.D_false) -> Interval.exactly 0
      | Some (Model.D_class _) ->
          (* class objects are fixed-format: nothing indexable *)
          Interval.exactly 0
      | None -> base)
  | Num_slots_of t -> (
      match desc_of t with
      | Some (Model.D_object { class_id = Some cid; _ }) -> (
          match lookup_class cid with
          | Some d when Vm_objects.Class_desc.is_variable d -> base
          | Some d -> Interval.exactly (Vm_objects.Class_desc.fixed_size d)
          | None -> base)
      | Some (Model.D_object { class_id = None; _ }) -> base
      | Some (Model.D_nil | Model.D_true | Model.D_false) -> Interval.exactly 0
      | Some (Model.D_class _) -> Interval.exactly 2
      | Some (Model.D_small_int _ | Model.D_float _) -> Interval.exactly 0
      (* note: for byte objects [num_slots] is the byte count; kept at the
         base interval (the interpreter only queries it on pointers) *)
      | _ -> base)
  | Fixed_size_of t -> (
      match desc_of t with
      | Some (Model.D_object { class_id = Some cid; _ }) -> (
          match lookup_class cid with
          | Some d -> Interval.exactly (Vm_objects.Class_desc.fixed_size d)
          | None -> base)
      | Some (Model.D_byte_object _) -> Interval.exactly 0
      | Some (Model.D_nil | Model.D_true | Model.D_false) -> Interval.exactly 0
      | Some (Model.D_class _) -> Interval.exactly 2
      | Some (Model.D_small_int _ | Model.D_float _) -> Interval.exactly 0
      | _ -> base)
  | Class_index_of t -> (
      match desc_of t with
      | Some (Model.D_object { class_id = Some cid; _ })
      | Some (Model.D_byte_object { class_id = Some cid; _ }) ->
          Interval.exactly cid
      | Some (Model.D_small_int _) ->
          Interval.exactly Vm_objects.Class_table.small_integer_id
      | Some (Model.D_float _) ->
          Interval.exactly Vm_objects.Class_table.boxed_float_id
      | _ -> base)
  | _ -> base

let solve_conjunction ?(seed = 0x5EED) (lits : lit list) : conj_result =
  (* 1. Types. *)
  let terms = collect_oop_terms lits in
  match apply_type_lits terms lits with
  | exception Conflict -> C_unsat
  | () -> (
      let descs = Hashtbl.create 16 in
      match
        Hashtbl.iter
          (fun t info -> Hashtbl.replace descs t (resolve_info info))
          terms
      with
      | exception Conflict -> C_unsat
      | () -> (
          (* 2. Atoms and intervals. *)
          let atoms = Hashtbl.create 16 in
          let note_atom e =
            if (is_int_atom e || is_float_atom e) && not (Hashtbl.mem atoms e)
            then Hashtbl.add atoms e ()
          in
          let rec scan e =
            note_atom e;
            List.iter scan (Limits.subexprs e)
          in
          List.iter
            (function
              | L_cmp (_, a, b) | L_fcmp (_, a, b) ->
                  scan a;
                  scan b
              | L_fnan (t, _) | L_finf (t, _) -> scan t
              | L_flag _ | L_class _ -> ())
            lits;
          let int_atoms =
            Hashtbl.fold (fun a () acc -> if is_int_atom a then a :: acc else acc) atoms []
          in
          let float_atoms =
            Hashtbl.fold
              (fun a () acc -> if is_float_atom a then a :: acc else acc)
              atoms []
          in
          let intervals = Hashtbl.create 16 in
          List.iter
            (fun a -> Hashtbl.replace intervals a (typed_interval descs a))
            int_atoms;
          (* 3. Interval propagation through linear comparisons. *)
          let changed = ref true in
          let rounds = ref 0 in
          let unsat = ref false in
          let get_interval a = Hashtbl.find intervals a in
          let lin_interval ts c =
            List.fold_left
              (fun acc (t, k) -> Interval.add acc (Interval.scale k (get_interval t)))
              (Interval.exactly c) ts
          in
          while !changed && !rounds < 20 && not !unsat do
            changed := false;
            incr rounds;
            List.iter
              (fun l ->
                match l with
                | L_cmp (c, a, b) -> (
                    match linear_form (Sub (a, b)) with
                    | Some (ts, k) ->
                        (* For each atom: atom ⋈ -(rest)/coeff *)
                        List.iter
                          (fun (t, coeff) ->
                            (* only unit coefficients are propagated
                               exactly; others are left to the witness
                               search (dividing intervals by a signed
                               constant needs careful rounding to stay
                               sound) *)
                            if abs coeff = 1 then begin
                              let rest =
                                lin_interval
                                  (List.filter (fun (t', _) -> t' <> t) ts)
                                  k
                              in
                              (* coeff·t + rest ⋈ 0 → t ⋈' -rest/coeff *)
                              let bound =
                                if coeff > 0 then Interval.scale (-1) rest
                                else rest
                              in
                              let cur = get_interval t in
                              let c' =
                                if coeff > 0 then c
                                else
                                  match c with
                                  | Sym_expr.Clt -> Sym_expr.Cgt
                                  | Cle -> Cge
                                  | Cgt -> Clt
                                  | Cge -> Cle
                                  | (Ceq | Cne) as x -> x
                              in
                              match Interval.tighten_cmp c' cur bound with
                              | Some tightened ->
                                  if not (Interval.equal tightened cur) then begin
                                    Hashtbl.replace intervals t tightened;
                                    changed := true
                                  end
                              | None -> unsat := true
                            end)
                          ts
                    | None -> ())
                | _ -> ())
              lits
          done;
          (* 3b. interval fast path for the nonlinear shift/mask forms
             the normaliser produces: evaluate both comparison sides to
             intervals and reject comparisons that cannot hold. *)
          let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1) in
          let is_pow2 n = n > 0 && n land (n - 1) = 0 in
          let rec interval_of (e : Sym_expr.t) : Interval.t option =
            if is_int_atom e then Hashtbl.find_opt intervals e
            else
              let map2 f a b =
                match (interval_of a, interval_of b) with
                | Some ia, Some ib -> Some (f ia ib)
                | _ -> None
              in
              match e with
              | Int_const c -> Some (Interval.exactly c)
              | Add (a, b) -> map2 Interval.add a b
              | Sub (a, b) -> map2 Interval.sub a b
              | Neg a -> Option.map Interval.neg (interval_of a)
              | Mul (a, Int_const k) | Mul (Int_const k, a) ->
                  Option.map (Interval.scale k) (interval_of a)
              | Div (a, Int_const k) when is_pow2 k ->
                  Option.map (Interval.shift_right (log2 k)) (interval_of a)
              | Mod (a, Int_const m) when is_pow2 m ->
                  Option.map (Interval.mask (m - 1)) (interval_of a)
              | _ -> None
          in
          if not !unsat then
            List.iter
              (function
                | L_cmp (c, a, b) -> (
                    match (interval_of a, interval_of b) with
                    | Some ia, Some ib ->
                        if Interval.tighten_cmp c ia ib = None then
                          unsat := true
                    | _ -> ())
                | _ -> ())
              lits;
          if !unsat then C_unsat
          else begin
            (* 4. Witness search. *)
            let rng = Random.State.make [| seed |] in
            let env = Eval.create_env () in
            let value_lits =
              List.filter
                (function L_flag _ | L_class _ -> false | _ -> true)
                lits
            in
            let all_hold () =
              List.for_all
                (fun l -> try lit_holds env l with Eval.Failed -> false)
                value_lits
            in
            let float_candidates =
              [ 1.5; 0.0; 1.0; -1.0; 0.5; 2.0; -2.5; 100.25; 1e10; -1e10 ]
            in
            let int_candidates a =
              let iv = get_interval a in
              (* prefer small magnitudes: witnesses near zero exercise the
                 interesting fast paths of both engines *)
              List.sort_uniq Int.compare
                (List.filter (Interval.contains iv)
                   [
                     iv.Interval.lo;
                     iv.Interval.hi;
                     0;
                     1;
                     -1;
                     2;
                     -2;
                     iv.Interval.lo + 1;
                     iv.Interval.hi - 1;
                   ])
              |> List.stable_sort (fun a b ->
                     compare (abs a, a) (abs b, b))
            in
            let try_assignment assign =
              assign ();
              all_hold ()
            in
            let found = ref false in
            (* 4a. biased candidates (bounded Cartesian walk) *)
            let rec walk ints floats budget =
              if !found || budget <= 0 then budget
              else
                match (ints, floats) with
                | [], [] ->
                    if try_assignment (fun () -> ()) then found := true;
                    budget - 1
                | a :: rest, _ ->
                    List.fold_left
                      (fun budget v ->
                        if !found || budget <= 0 then budget
                        else begin
                          Hashtbl.replace env.ints a v;
                          walk rest floats budget
                        end)
                      budget (int_candidates a)
                | [], f :: rest ->
                    List.fold_left
                      (fun budget v ->
                        if !found || budget <= 0 then budget
                        else begin
                          Hashtbl.replace env.floats f v;
                          walk [] rest budget
                        end)
                      budget float_candidates
            in
            ignore (walk int_atoms float_atoms 4096);
            (* 4b. random sampling *)
            let tries = ref 0 in
            while (not !found) && !tries < 4000 do
              Exec.Budget.tick ~cost:4 ();
              incr tries;
              List.iter
                (fun a ->
                  Hashtbl.replace env.ints a
                    (Interval.sample (get_interval a) ~rng))
                int_atoms;
              List.iter
                (fun f ->
                  let v =
                    match Random.State.int rng 12 with
                    | 0 -> 0.0
                    | 1 -> 1.0
                    | 2 -> -1.0
                    | 3 -> Float.of_int (Random.State.int rng 1000)
                    | 4 -> -.Float.of_int (Random.State.int rng 1000)
                    | _ -> (Random.State.float rng 2e6) -. 1e6
                  in
                  Hashtbl.replace env.floats f v)
                float_atoms;
              (* 4c. linear repair: fix failing equalities by solving for
                 one atom. *)
              let repair () =
                List.iter
                  (fun l ->
                    match l with
                    | L_cmp (c, a, b) when not (try lit_holds env l with Eval.Failed -> false)
                      -> (
                        match linear_form (Sub (a, b)) with
                        | Some (ts, k) -> (
                            match ts with
                            | (t, coeff) :: _ when abs coeff = 1 -> (
                                try
                                  let rest =
                                    List.fold_left
                                      (fun acc (t', k') ->
                                        if t' == t || t' = t then acc
                                        else acc + (k' * Hashtbl.find env.ints t'))
                                      k
                                      (List.tl ts)
                                  in
                                  (* coeff·t + rest ⋈ 0 *)
                                  let target =
                                    match (c, coeff > 0) with
                                    | Sym_expr.Ceq, true -> -rest
                                    | Ceq, false -> rest
                                    | Cne, _ -> (-rest) + 1
                                    | (Clt | Cle), true -> -rest - 1
                                    | (Clt | Cle), false -> rest + 1
                                    | (Cgt | Cge), true -> -rest + 1
                                    | (Cgt | Cge), false -> rest - 1
                                  in
                                  let iv = get_interval t in
                                  let clamped =
                                    max iv.Interval.lo (min iv.Interval.hi target)
                                  in
                                  Hashtbl.replace env.ints t clamped
                                with Not_found | Eval.Failed -> ())
                            | _ -> ())
                        | None -> ())
                    | L_fcmp (Ceq, a, b)
                      when not (try lit_holds env l with Eval.Failed -> false) -> (
                        (* direct float repair: atom = other side *)
                        match (a, b) with
                        | atom, other when is_float_atom atom -> (
                            try Hashtbl.replace env.floats atom (eval_float env other)
                            with Eval.Failed -> ())
                        | other, atom when is_float_atom atom -> (
                            try Hashtbl.replace env.floats atom (eval_float env other)
                            with Eval.Failed -> ())
                        | _ -> ())
                    | _ -> ())
                  value_lits
              in
              repair ();
              repair ();
              if all_hold () then found := true
            done;
            if not !found then
              if value_lits = [] then found := true else ();
            if not !found then C_unknown "no witness found"
            else begin
              (* 5. Assemble the model. *)
              let model = Model.create () in
              List.iter
                (fun a -> Model.set_int model a (Hashtbl.find env.ints a))
                int_atoms;
              List.iter
                (fun f -> Model.set_float model f (Hashtbl.find env.floats f))
                float_atoms;
              Hashtbl.iter
                (fun term desc ->
                  let desc =
                    match (desc : Model.oop_desc) with
                    | D_small_int _ ->
                        Model.D_small_int
                          (Model.int_or model (Integer_value_of term) ~default:0)
                    | D_float _ ->
                        Model.D_float
                          (Model.float_or model (Float_value_of term)
                             ~default:1.5)
                    | D_object { class_id; num_slots = _ } ->
                        let num_slots =
                          match Model.int model (Num_slots_of term) with
                          | Some n -> n
                          | None -> (
                              match class_id with
                              | Some cid -> (
                                  match lookup_class cid with
                                  | Some d when not (Vm_objects.Class_desc.is_variable d)
                                    ->
                                      Vm_objects.Class_desc.fixed_size d
                                  | Some d ->
                                      Vm_objects.Class_desc.fixed_size d
                                      + Model.int_or model
                                          (Indexable_size_of term) ~default:0
                                  | None -> 0)
                              | None -> 0)
                        in
                        Model.D_object { class_id; num_slots }
                    | D_byte_object { class_id; size = _ } ->
                        Model.D_byte_object
                          {
                            class_id;
                            size =
                              Model.int_or model (Indexable_size_of term)
                                ~default:0;
                          }
                    | (D_class _ | D_nil | D_true | D_false) as d -> d
                  in
                  Model.set_oop model term desc)
                descs;
              C_sat model
            end
          end))

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* [conds] must already be normalized. *)
let solve_normalized ~seed (conds : Sym_expr.t list) : verdict =
  if List.exists Sym_expr.has_bitwise conds then
    Unknown "bitwise operations unsupported by the constraint solver"
  else if List.exists Limits.expr_exceeds_precision conds then
    Unknown "constant exceeds 56-bit solver precision"
  else
    match
      List.fold_left
        (fun branches cond ->
          let alts = expand cond ~pol:true in
          if List.length branches * List.length alts > 64 then
            raise (Give_up "too many disjunctive branches")
          else
            List.concat_map
              (fun br -> List.map (fun alt -> br @ alt) alts)
              branches)
        [ [] ] conds
    with
    | exception Give_up reason -> Unknown reason
    | [] -> Unsat
    | branches -> (
        let rec try_branches saw_unknown = function
          | [] -> if saw_unknown then Unknown "all branches unknown" else Unsat
          | br :: rest -> (
              match solve_conjunction ~seed br with
              | C_sat m -> Sat m
              | C_unsat -> try_branches saw_unknown rest
              | C_unknown _ -> try_branches true rest)
        in
        try try_branches false branches
        with Give_up reason -> Unknown reason)

(* ------------------------------------------------------------------ *)
(* Canonical (prepared) conjunctions                                    *)
(* ------------------------------------------------------------------ *)

(* A [prepared] value is a path condition in canonical form: every
   conjunct bit-normalized, top-level [Not] pushed through integer
   comparisons, trivially-true conjuncts dropped, duplicates collapsed,
   and the remainder sorted by rendered string.  Semantically equal
   conjunctions built in any order therefore share one [fingerprint] —
   the collision the memo and the persistent store both key on.

   Alongside the conjunct set it carries cheap syntactic refutation
   state: per-term constant bounds (intersected as conjuncts arrive) and
   a [contradicted] bit set by a complement pair (c ∧ ¬c), a constant
   comparison that is false, or an empty bound meet.  Every refutation
   rule is sound for Unsat — a true Sat conjunction can never trip it —
   so callers may skip the decision procedure entirely on a contradicted
   value.  [contradicted] is a pure function of the conjunct *set*
   (complement pairs, false members and bound meets do not depend on
   insertion order), so equal fingerprints always agree on it and the
   verdict cache cannot be poisoned by the shortcut. *)

type prepared = {
  pn : (string * Sym_expr.t) list; (* sorted by rendered conjunct *)
  bounds : (string * Interval.t) list; (* term render → constant bounds *)
  contradicted : bool;
}

let empty_prepared = { pn = []; bounds = []; contradicted = false }
let fingerprint p = String.concat " & " (List.map fst p.pn)
let prepared_unsat p = p.contradicted
let prepared_conds p = List.map snd p.pn

(* ¬(a ⋈ b) ≡ (a ⋈' b) holds for *integer* comparisons (they are
   total); float comparisons are left alone — ¬(a < b) is not (a >= b)
   under NaN. *)
let rec push_not (e : Sym_expr.t) : Sym_expr.t =
  match e with
  | Not (Cmp (c, a, b)) -> Cmp (negate_cmp c, a, b)
  | Not (Bool_const b) -> Bool_const (not b)
  | Not (Not e) -> push_not e
  | e -> e

let rec const_truth (e : Sym_expr.t) : bool option =
  match e with
  | Bool_const b -> Some b
  | Not e -> Option.map not (const_truth e)
  | Cmp (c, Int_const a, Int_const b) -> Some (Eval.cmp_holds c a b)
  | _ -> None

(* The syntactic negation of a canonical conjunct.  [Not] is genuine
   logical negation, so the default arm is always sound; comparisons
   get the comparison form because [push_not] canonicalised theirs
   away. *)
let complement (e : Sym_expr.t) : Sym_expr.t =
  match e with
  | Not e -> e
  | Cmp (c, a, b) -> Cmp (negate_cmp c, a, b)
  | e -> Not e

let flip_cmp : Sym_expr.cmp -> Sym_expr.cmp = function
  | Clt -> Cgt
  | Cle -> Cge
  | Cgt -> Clt
  | Cge -> Cle
  | (Ceq | Cne) as c -> c

(* Wide sentinel bounds: comfortably past any small-int or size value,
   comfortably inside overflow range for interval arithmetic. *)
let wide_interval = { Interval.lo = min_int asr 2; hi = max_int asr 2 }

let update_bounds bounds (c : Sym_expr.t) =
  let tighten term cmp k =
    let tr = Sym_expr.to_string term in
    let cur =
      match List.assoc_opt tr bounds with
      | Some iv -> iv
      | None -> wide_interval
    in
    match Interval.tighten_cmp cmp cur (Interval.exactly k) with
    | Some iv -> ((tr, iv) :: List.remove_assoc tr bounds, false)
    | None -> (bounds, true)
  in
  match c with
  | Cmp (cmp, Int_const k, t) -> tighten t (flip_cmp cmp) k
  | Cmp (cmp, t, Int_const k) -> tighten t cmp k
  | _ -> (bounds, false)

let extend (p : prepared) (cond : Sym_expr.t) : prepared =
  let c = push_not (normalize cond) in
  let ins r c pn =
    let rec go = function
      | [] -> [ (r, c) ]
      | ((r0, _) as hd) :: tl -> if r < r0 then (r, c) :: hd :: tl else hd :: go tl
    in
    go pn
  in
  match const_truth c with
  | Some true -> p
  | Some false ->
      (* kept in the conjunct set — the fingerprint must differ from
         the satisfiable conjunction that merely omits it *)
      let r = Sym_expr.to_string c in
      if List.mem_assoc r p.pn then { p with contradicted = true }
      else { p with pn = ins r c p.pn; contradicted = true }
  | None -> (
      let r = Sym_expr.to_string c in
      if List.mem_assoc r p.pn then p
      else
        let pn = ins r c p.pn in
        if p.contradicted then { p with pn }
        else if List.mem_assoc (Sym_expr.to_string (complement c)) p.pn then
          { p with pn; contradicted = true }
        else
          match update_bounds p.bounds c with
          | bounds, dead -> { pn; bounds; contradicted = dead })

let prepare (conds : Sym_expr.t list) : prepared =
  List.fold_left extend empty_prepared conds

let normalize_conjunction conds = prepared_conds (prepare conds)

(* ------------------------------------------------------------------ *)
(* Entry points and caches                                              *)
(* ------------------------------------------------------------------ *)

let solve_uncached ?(seed = 0x5EED) (conds : Sym_expr.t list) : verdict =
  (* Canonicalise exactly like [solve], then mirror the paper's solver
     limits (§4.3) on whatever remains — the determinism oracle must
     walk the same road as the cached entry point. *)
  let p = prepare conds in
  if p.contradicted then Unsat
  else solve_normalized ~seed (prepared_conds p)

(* The memo table.  Keyed on the canonical conjunction's [fingerprint]
   (the same rendering convention [Path.key] and the static caches use)
   plus the seed, so two queries that canonicalise identically share
   one verdict.  Verdicts are deterministic per key and models are
   immutable once built, so sharing the table read-mostly across domains
   never changes a result — only how often the decision procedure runs. *)
let memo : (string, verdict) Exec.Memo.t = Exec.Memo.create ~shards:64 ()

(* The persistent layer: verdicts survive the process when a store is
   active.  Pure function of the key (seed + canonical conjunction), so
   no fault tag is needed — compiled code never enters a solver key. *)
let store_ns = "solver-verdict:1"

(* Independent of the memo's own hit/miss counters: one increment per
   [solve] call, before the lookup.  The invariant
   [queries_posed = hits + misses] cross-checks the memo accounting
   (the bench harness fails its run when it does not hold). *)
let queries_posed_counter = Atomic.make 0
let queries_posed () = Atomic.get queries_posed_counter

let solve_canon ~seed (p : prepared) : verdict =
  let key = string_of_int seed ^ "|" ^ fingerprint p in
  Exec.Memo.find_or_add memo key (fun _ ->
      if p.contradicted then Unsat
      else
        match Exec.Store.lookup ~ns:store_ns ~key with
        | Some v -> v
        | None ->
            let v = solve_normalized ~seed (prepared_conds p) in
            Exec.Store.record ~ns:store_ns ~key v;
            v)

(* Chaos and watchdog poll come before the posed-counter increment and
   the memo lookup: an injected raise or an exhausted budget leaves
   [queries_posed = hits + misses] intact and never poisons the shared
   cache. *)
let solve_prepared ?(seed = 0x5EED) (p : prepared) : verdict =
  Exec.Chaos.hook_solver ();
  Exec.Budget.tick ~cost:16 ();
  Atomic.incr queries_posed_counter;
  solve_canon ~seed p

let solve ?(seed = 0x5EED) (conds : Sym_expr.t list) : verdict =
  Exec.Chaos.hook_solver ();
  Exec.Budget.tick ~cost:16 ();
  Atomic.incr queries_posed_counter;
  solve_canon ~seed (prepare conds)

let cache_stats () = Exec.Memo.stats memo

let reset_cache () =
  Atomic.set queries_posed_counter 0;
  Exec.Memo.clear memo
