(* The differential test runner (§2.4, §4.2).

   For each concolically explored path:
   1. *curate*: re-solve the recorded path condition; paths the solver
      cannot crack (bitwise constraints, precision limits) are curated
      out, mirroring the paper's curated-paths column;
   2. rebuild the concrete input deterministically from the path's model
      (the same materialisation the interpreter side used);
   3. compile the instruction with the compiler under test and run the
      machine code on the CPU simulator, adapting the stack-machine input
      to the register-machine calling convention;
   4. validate the exit condition and the observable outputs against the
      recorded output constraints. *)

module Sym = Symbolic.Sym_expr
module EC = Interpreter.Exit_condition

type outcome =
  | Pass
  | Expected_failure (* invalid-frame paths etc. (§3.4) *)
  | Curated_out of string
  | Diff of Difference.t

let is_diff = function Diff _ -> true | _ -> false

(* Rebuild the materialisation parameters recorded in a path. *)
let rebuild_input (path : Concolic.Path.t) =
  let frame = path.input_frame in
  let as_var e =
    match (e : Sym.t) with
    | Var v -> v
    | _ -> invalid_arg "Runner: input frame entry is not a variable"
  in
  let recv_var = as_var (Symbolic.Abstract_frame.receiver frame) in
  let temp_vars =
    Array.map as_var (Symbolic.Abstract_frame.temps frame)
  in
  let stack = Symbolic.Abstract_frame.operand_stack frame in
  let n = List.length stack in
  let entry_var rank =
    (* bottom-up list [rank n-1; ...; rank 0] *)
    if rank < n then as_var (List.nth stack (n - 1 - rank))
    else
      (* never materialised beyond the recorded depth *)
      { Sym.id = 100000 + rank; name = Printf.sprintf "s%d!" rank; sort = Sym.Oop }
  in
  let method_in om =
    Concolic.Explorer.method_in_for path.subject om
  in
  Concolic.Materialize.build ~model:path.model ~method_in ~recv_var ~temp_vars
    ~entry_var ~stack_size_term:path.stack_size_term ()

(* Expected final pc → stop marker mapping for branch instructions. *)
let expected_marker (path : Concolic.Path.t) =
  match path.subject with
  | Concolic.Path.Native _ -> 0
  | Concolic.Path.Bytecode_seq _ ->
      (* every sequence path that succeeds runs to the end marker *)
      0
  | Concolic.Path.Bytecode op -> (
      match op with
      | Bytecodes.Opcode.Jump d | Jump_false d | Jump_true d ->
          let next = 1 in
          if path.output.pc = next + d then 1 else 0
      | Jump_ext d | Jump_false_ext d | Jump_true_ext d ->
          let next = 2 in
          if path.output.pc = next + d then 1 else 0
      | _ -> 0)

(* Map a send selector recorded by the interpreter to the trampoline info
   the compiled code must call. *)
let send_info_matches (expected : EC.selector * int)
    (info : Machine.Machine_code.send_info) =
  let sel, n = expected in
  EC.equal_selector sel info.selector && n = info.num_args

let run_machine ~defects cpu program =
  match Machine.Cpu.run cpu program with
  | Machine.Cpu.Returned w -> Difference.O_return w
  | Machine.Cpu.Stopped 0 -> Difference.O_success { marker = 0 }
  | Machine.Cpu.Stopped m -> Difference.O_success { marker = m }
  | Machine.Cpu.Called_trampoline info -> Difference.O_send info
  | Machine.Cpu.Segfault -> Difference.O_segfault
  | Machine.Cpu.Out_of_fuel -> Difference.O_out_of_fuel
  | exception Machine.Register_accessors.Simulation_error msg ->
      ignore defects;
      Difference.O_simulation_error msg

(* Validate machine outputs against the recorded output constraints. *)
let check_outputs ~(path : Concolic.Path.t) ~(env : Concrete_eval.env)
    ~(cpu : Machine.Cpu.t) ~(stack_expected : Sym.t list)
    ~(check_stack : bool) : string option =
  let om = Machine.Cpu.object_memory cpu in
  ignore om;
  let mismatch = ref None in
  let note what = if !mismatch = None then mismatch := Some what in
  (if check_stack then begin
     let words = Machine.Cpu.stack_words cpu in
     if List.length words <> List.length stack_expected then
       note
         (Printf.sprintf "stack depth: machine %d, interpreter %d"
            (List.length words)
            (List.length stack_expected))
     else
       List.iteri
         (fun i (w, e) ->
           match Concrete_eval.eval_oop env e with
           | expected ->
               if not (Concrete_eval.matches env expected w) then
                 note (Printf.sprintf "stack slot %d" i)
           | exception Concrete_eval.Unevaluable m ->
               note ("unevaluable output: " ^ m))
         (List.combine words stack_expected)
   end);
  (* heap effects: the compiled run must have performed the same stores *)
  List.iter
    (fun (eff : Concolic.Shadow_machine.effect) ->
      match eff with
      | Concolic.Shadow_machine.Slot_write { target; index; stored } -> (
          match Concrete_eval.eval_oop env target with
          | Concrete_eval.Exact tv -> (
              match Concrete_eval.eval_oop env stored with
              | expected -> (
                  match
                    Vm_objects.Object_memory.fetch_pointer
                      (Machine.Cpu.object_memory cpu) tv index
                  with
                  | actual ->
                      if not (Concrete_eval.matches env expected (actual :> int))
                      then note (Printf.sprintf "heap slot %d" index)
                  | exception Vm_objects.Heap.Invalid_access _ ->
                      note "heap write target invalid")
              | exception Concrete_eval.Unevaluable m ->
                  note ("unevaluable stored value: " ^ m))
          | _ -> ()
          | exception Concrete_eval.Unevaluable _ -> ())
      | Concolic.Shadow_machine.Byte_write { target; index; stored } -> (
          match Concrete_eval.eval_oop env target with
          | Concrete_eval.Exact tv -> (
              match Concrete_eval.eval_int env stored with
              | expected -> (
                  match
                    Vm_objects.Object_memory.fetch_byte
                      (Machine.Cpu.object_memory cpu) tv index
                  with
                  | actual ->
                      if actual <> expected land 0xff then
                        note (Printf.sprintf "heap byte %d" index)
                  | exception Vm_objects.Heap.Invalid_access _ ->
                      note "heap write target invalid")
              | exception Concrete_eval.Unevaluable m ->
                  note ("unevaluable stored byte: " ^ m))
          | _ -> ()
          | exception Concrete_eval.Unevaluable _ -> ()))
    path.output.effects;
  !mismatch

let diff ~compiler ~arch ~(path : Concolic.Path.t) kind =
  let family, cause =
    Classify.classify ~compiler ~subject:path.subject ~exit_:path.exit_
      ~observed:
        (match kind with
        | Difference.Exit_mismatch { observed; _ } -> observed
        | Difference.Value_mismatch _ -> Difference.O_success { marker = 0 })
  in
  let family, cause = Classify.refine_simple_arith ~path (family, cause) in
  Diff
    {
      Difference.compiler;
      arch;
      subject = path.subject;
      path_key = Concolic.Path.key path;
      kind;
      family;
      cause;
    }

(* --- byte-code instruction testing --- *)

let run_bytecode_path ~defects ~compiler ~arch (path : Concolic.Path.t)
    (op : [ `One of Bytecodes.Opcode.t | `Seq of Bytecodes.Opcode.t list ]) :
    outcome =
  match path.exit_ with
  | EC.Invalid_frame ->
      (* expected failures: the frame generator simply lacked elements *)
      Expected_failure
  | _ -> (
      (* curation was computed once at exploration time (same query,
         same verdict) — no re-solve per (compiler × arch) consumer.
         The chaos hook still fires per consult so a memoized verdict
         can never mask an injected solver fault. *)
      Exec.Chaos.hook_solver ();
      match path.curation with
      | Solver.Solve.Unknown reason -> Curated_out reason
      | Solver.Solve.Unsat -> Curated_out "path condition re-solve unsat"
      | Solver.Solve.Sat _ -> (
          let input = rebuild_input path in
          let om = input.om in
          let meth = input.meth in
          let literals =
            Array.map
              (fun (v : Vm_objects.Value.t) -> (v :> int))
              (Bytecodes.Compiled_method.literals meth)
          in
          let stack_setup =
            List.map
              (fun (v : Vm_objects.Value.t) -> (v :> int))
              (Interpreter.Frame.stack_bottom_up input.frame)
          in
          let compiled =
            match op with
            | `One op ->
                (fun () ->
                  Jit.Cogits.compile_bytecode_to_machine compiler ~defects
                    ~literals ~stack_setup ~arch op)
            | `Seq ops ->
                (fun () ->
                  Jit.Cogits.compile_sequence_to_machine compiler ~defects
                    ~literals ~stack_setup ~arch ops)
          in
          match compiled () with
          | exception Jit.Cogits.Not_compiled msg ->
              diff ~compiler ~arch ~path
                (Difference.Exit_mismatch
                   { expected = path.exit_; observed = Difference.O_not_compiled msg })
          | program -> (
              let cpu =
                Machine.Cpu.create
                  ~accessor_gaps:defects.Interpreter.Defects.simulation_accessor_gaps
                  om
              in
              Machine.Cpu.set_reg cpu Machine.Machine_code.r_receiver
                ((Interpreter.Frame.receiver input.frame :> int));
              Array.iteri
                (fun i (v : Vm_objects.Value.t) ->
                  Machine.Cpu.set_temp cpu i (v :> int))
                (Interpreter.Frame.temps input.frame);
              let observed = run_machine ~defects cpu program in
              let env =
                Concrete_eval.create ~om
                  ~bindings:
                    (List.map (fun (t, v) -> (t, v)) input.bindings)
              in
              let mismatch k = diff ~compiler ~arch ~path k in
              match (path.exit_, observed) with
              | EC.Success, Difference.O_success { marker } ->
                  if marker <> expected_marker path then
                    mismatch
                      (Difference.Exit_mismatch
                         { expected = path.exit_; observed })
                  else begin
                    (* temps check *)
                    let temp_mismatch = ref None in
                    Array.iteri
                      (fun i e ->
                        match Concrete_eval.eval_oop env e with
                        | expected ->
                            if
                              not
                                (Concrete_eval.matches env expected
                                   (Machine.Cpu.temp cpu i))
                            then
                              if !temp_mismatch = None then
                                temp_mismatch :=
                                  Some (Printf.sprintf "temp %d" i)
                        | exception Concrete_eval.Unevaluable m ->
                            if !temp_mismatch = None then
                              temp_mismatch := Some ("unevaluable temp: " ^ m))
                      path.output.temps;
                    match
                      ( !temp_mismatch,
                        check_outputs ~path ~env ~cpu
                          ~stack_expected:path.output.stack ~check_stack:true )
                    with
                    | None, None -> Pass
                    | Some what, _ | None, Some what ->
                        mismatch (Difference.Value_mismatch { what })
                  end
              | EC.Message_send { selector; num_args }, Difference.O_send info
                ->
                  if send_info_matches (selector, num_args) info then Pass
                  else
                    mismatch
                      (Difference.Exit_mismatch
                         { expected = path.exit_; observed })
              | EC.Method_return, Difference.O_return w -> (
                  match path.output.return_value with
                  | None -> Pass
                  | Some e -> (
                      match Concrete_eval.eval_oop env e with
                      | expected ->
                          if Concrete_eval.matches env expected w then Pass
                          else
                            mismatch
                              (Difference.Value_mismatch
                                 { what = "return value" })
                      | exception Concrete_eval.Unevaluable m ->
                          mismatch
                            (Difference.Value_mismatch
                               { what = "unevaluable return: " ^ m })))
              | EC.Invalid_memory_access, Difference.O_segfault ->
                  (* unsafe byte-codes: both engines fault — expected *)
                  Expected_failure
              | _, Difference.O_simulation_error _ ->
                  mismatch
                    (Difference.Exit_mismatch
                       { expected = path.exit_; observed })
              | _ ->
                  mismatch
                    (Difference.Exit_mismatch
                       { expected = path.exit_; observed }))))

(* --- native method testing --- *)

let run_native_path ~defects ~compiler:_ ~arch (path : Concolic.Path.t)
    (prim_id : int) : outcome =
  let compiler = Jit.Cogits.Native_method_compiler in
  match path.exit_ with
  | EC.Invalid_frame -> Expected_failure
  | _ -> (
      Exec.Chaos.hook_solver ();
      match path.curation with
      | Solver.Solve.Unknown reason -> Curated_out reason
      | Solver.Solve.Unsat -> Curated_out "path condition re-solve unsat"
      | Solver.Solve.Sat _ -> (
          let arity = Interpreter.Primitive_table.arity prim_id in
          let input = rebuild_input path in
          let stack = Interpreter.Frame.stack_bottom_up input.frame in
          if List.length stack <> arity + 1 then Expected_failure
          else
            match Jit.Cogits.compile_native_to_machine ~defects ~arch prim_id with
            | exception Jit.Cogits.Not_compiled msg ->
                diff ~compiler ~arch ~path
                  (Difference.Exit_mismatch
                     {
                       expected = path.exit_;
                       observed = Difference.O_not_compiled msg;
                     })
            | program -> (
                let om = input.om in
                let cpu =
                  Machine.Cpu.create
                    ~accessor_gaps:
                      defects.Interpreter.Defects.simulation_accessor_gaps om
                in
                (* calling convention: receiver + args in registers *)
                List.iteri
                  (fun i (v : Vm_objects.Value.t) ->
                    Machine.Cpu.set_reg cpu
                      (if i = 0 then Machine.Machine_code.r_receiver
                       else Machine.Machine_code.r_arg0 + i - 1)
                      (v :> int))
                  stack;
                let observed =
                  (* for native methods the breakpoint means the template
                     fell through: the primitive failed (Listing 4) *)
                  match run_machine ~defects cpu program with
                  | Difference.O_success { marker = 0 } -> Difference.O_failure
                  | o -> o
                in
                let env =
                  Concrete_eval.create ~om
                    ~bindings:(List.map (fun (t, v) -> (t, v)) input.bindings)
                in
                let mismatch k = diff ~compiler ~arch ~path k in
                match (path.exit_, observed) with
                | EC.Success, Difference.O_return w -> (
                    (* the answer is the single value left on the operand
                       stack by the interpreter *)
                    match List.rev path.output.stack with
                    | result :: _ -> (
                        match Concrete_eval.eval_oop env result with
                        | expected ->
                            if Concrete_eval.matches env expected w then begin
                              match
                                check_outputs ~path ~env ~cpu
                                  ~stack_expected:[] ~check_stack:false
                              with
                              | None -> Pass
                              | Some what ->
                                  mismatch (Difference.Value_mismatch { what })
                            end
                            else
                              mismatch
                                (Difference.Value_mismatch { what = "result" })
                        | exception Concrete_eval.Unevaluable m ->
                            mismatch
                              (Difference.Value_mismatch
                                 { what = "unevaluable result: " ^ m }))
                    | [] ->
                        mismatch
                          (Difference.Value_mismatch
                             { what = "no result on interpreter stack" }))
                | EC.Failure, Difference.O_failure ->
                    (* both failed their operand checks: the compiled code
                       fell through to the breakpoint (Listing 4) *)
                    Pass
                | _ ->
                    mismatch
                      (Difference.Exit_mismatch
                         { expected = path.exit_; observed }))))

let run_path ~defects ~compiler ~arch (path : Concolic.Path.t) : outcome =
  match (path.subject, compiler) with
  | Concolic.Path.Bytecode op, (Jit.Cogits.Simple_stack_cogit | Jit.Cogits.Stack_to_register_cogit | Jit.Cogits.Register_allocating_cogit) ->
      run_bytecode_path ~defects ~compiler ~arch path (`One op)
  | Concolic.Path.Bytecode_seq ops, (Jit.Cogits.Simple_stack_cogit | Jit.Cogits.Stack_to_register_cogit | Jit.Cogits.Register_allocating_cogit) ->
      run_bytecode_path ~defects ~compiler ~arch path (`Seq ops)
  | Concolic.Path.Native id, Jit.Cogits.Native_method_compiler ->
      run_native_path ~defects ~compiler ~arch path id
  | _ -> invalid_arg "Runner.run_path: compiler/subject mismatch"

(* --- static pre-execution verification (the runner's pass 0) --- *)

type agreement =
  | Both_clean
  | Both_flagged
  | Static_only
  | Dynamic_only

(* One path's translation-validation result (see the pass-5 section
   below): candidates from {!Verify.Translation_validator} are confirmed
   by concrete replay before they count as refutations. *)
type validation =
  | V_proved
  | V_refuted of {
      witness : Verify.Translation_validator.witness;
      difference : Difference.t;
    }
  | V_spurious of Verify.Translation_validator.witness
  | V_unknown of string
  | V_skipped of string

let validation_to_string = function
  | V_proved -> "proved"
  | V_refuted { difference; _ } ->
      "refuted: " ^ Difference.to_string difference
  | V_spurious w ->
      "spurious witness: " ^ w.Verify.Translation_validator.reason
  | V_unknown r -> "unknown: " ^ r
  | V_skipped r -> "skipped: " ^ r

type verified = {
  outcome : outcome;
  static_findings : Verify.Finding.t list;
  agreement : agreement;
  validation : validation option;
      (* present when the caller opted into pass 5 *)
}

(* A static verdict depends only on (subject, compiler, arch, defects);
   memoize it across the many paths of one instruction — concurrently,
   since units of one instruction may run on several domains. *)
let static_cache : (string, Verify.Finding.t list) Exec.Memo.t =
  Exec.Memo.create ()

let static_findings ~defects ~compiler ~arch
    (subject : Concolic.Path.subject) : Verify.Finding.t list =
  let mine = Jit.Cogits.short_name compiler in
  let key =
    (* the Fault tag keeps mutant verdicts out of the pristine entries
       (and distinct mutants out of each other's) *)
    Printf.sprintf "%s|%s|%s|%d%s"
      (Concolic.Path.subject_name subject)
      mine
      (Jit.Codegen.arch_name arch)
      (Hashtbl.hash defects) (Jit.Fault.cache_tag ())
  in
  Exec.Memo.find_or_add static_cache key @@ fun _ ->
      let all =
        match subject with
        | Concolic.Path.Native id ->
            Verify.verify_native_unit ~defects ~arches:[ arch ] id
            @ Verify.differ_native ~defects id
        | Concolic.Path.Bytecode op ->
            Verify.verify_bytecode_unit ~defects ~compiler ~arches:[ arch ] op
            @ Verify.differ_bytecode ~defects op
        | Concolic.Path.Bytecode_seq ops ->
            Verify.verify_sequence_unit ~defects ~compiler ~arches:[ arch ]
              ops
      in
      (* the cross-compiler differ attributes findings per front-end;
         keep only the ones about this test's compiler *)
      let fs =
        List.filter
          (fun (f : Verify.Finding.t) ->
            f.compiler = mine || f.compiler = "-")
          all
      in
      fs

(* The static cross-ISA differ over a whole arch set: lower the unit
   once per ISA, summarise abstractly, and difference every ISA pair.
   Per (subject, compiler, arch-set, defects, fault), like the per-arch
   verdicts above — the campaign calls this once per unit and tallies
   the findings per (front-end x ISA-pair). *)
let cross_isa_cache : (string, Verify.Finding.t list) Exec.Memo.t =
  Exec.Memo.create ()

let cross_isa_findings ~defects ~compiler ~arches
    (subject : Concolic.Path.subject) : Verify.Finding.t list =
  if List.length arches < 2 then []
  else
    let mine = Jit.Cogits.short_name compiler in
    let key =
      Printf.sprintf "%s|%s|%s|%d%s"
        (Concolic.Path.subject_name subject)
        mine
        (String.concat "+" (List.map Jit.Codegen.arch_name arches))
        (Hashtbl.hash defects) (Jit.Fault.cache_tag ())
    in
    Exec.Memo.find_or_add cross_isa_cache key @@ fun _ ->
        let lower arch =
          match subject with
          | Concolic.Path.Native id ->
              Jit.Cogits.compile_native_to_machine ~defects ~arch id
          | Concolic.Path.Bytecode op ->
              Jit.Cogits.compile_bytecode_to_machine compiler ~defects
                ~literals:Verify.default_literals
                ~stack_setup:(Verify.default_stack_setup op)
                ~arch op
          | Concolic.Path.Bytecode_seq ops ->
              Jit.Cogits.compile_sequence_to_machine compiler ~defects
                ~literals:Verify.default_literals ~stack_setup:[] ~arch ops
        in
        match
          List.map
            (fun arch ->
              ( Jit.Codegen.arch_name arch,
                Verify.Abstract_mc.summarize (lower arch) ))
            arches
        with
        | exception Jit.Cogits.Not_compiled _ -> []
        | summaries ->
            Verify.Frame_diff.differ_arches
              ~subject:(Concolic.Path.subject_name subject)
              ~compiler:mine summaries

(* Cross-check a static verdict against the dynamic outcome.  A match is
   by exact root cause, or failing that by defect family (the static
   pass sometimes names the cause more precisely than a given dynamic
   path exposes, and vice versa). *)
let agreement_of outcome findings =
  match outcome with
  | Diff (d : Difference.t) ->
      let matches (f : Verify.Finding.t) =
        String.equal f.cause d.cause
        ||
        match Classify.family_of_static f.family with
        | Some fam -> Difference.equal_family fam d.family
        | None -> false
      in
      if List.exists matches findings then Both_flagged else Dynamic_only
  | Pass | Expected_failure | Curated_out _ ->
      let significant =
        List.filter
          (fun (f : Verify.Finding.t) ->
            Classify.family_of_static f.family <> None)
          findings
      in
      if significant = [] then Both_clean else Static_only

(* --- solver-backed translation validation (the runner's pass 5) ---

   The validator's [Refuted] verdicts are *candidates*: their witness
   models satisfy both path conditions plus the mismatch predicate, but
   only a concrete replay through [run_path] — materialising the witness
   and running the compiled code on the simulator — turns a candidate
   into a confirmed refutation.  Non-reproducing witnesses are kept as
   spurious warnings (the false-positive channel of any static layer),
   never as refutations. *)

let validate_path ?budget ~defects ~compiler ~arch (path : Concolic.Path.t) :
    validation =
  match path.exit_ with
  | EC.Invalid_frame -> V_skipped "invalid-frame path"
  | _ -> (
      let skip_native =
        match path.subject with
        | Concolic.Path.Native id ->
            path.input_stack_depth <> Interpreter.Primitive_table.arity id + 1
        | _ -> false
      in
      if skip_native then V_skipped "native calling-convention mismatch"
      else
        match
          Verify.Translation_validator.validate_path ?query_budget:budget
            ~defects ~compiler ~arch path
        with
        | Verify.Translation_validator.Proved -> V_proved
        | Verify.Translation_validator.Unknown r -> V_unknown r
        | Verify.Translation_validator.Refuted w -> (
            (* replay the witness model concretely: substitute it for
               the path's own model and re-run the full dynamic
               pipeline *)
            let replayed =
              { path with Concolic.Path.model = w.Verify.Translation_validator.model }
            in
            match run_path ~defects ~compiler ~arch replayed with
            | Diff difference -> V_refuted { witness = w; difference }
            | Pass | Expected_failure -> V_spurious w
            | Curated_out r ->
                V_unknown ("witness not materialisable: " ^ r)))

let run_path_verified ?(validate = false) ?budget ~defects ~compiler ~arch
    (path : Concolic.Path.t) : verified =
  let outcome = run_path ~defects ~compiler ~arch path in
  let static_findings =
    static_findings ~defects ~compiler ~arch path.Concolic.Path.subject
  in
  let validation =
    if validate then
      Some (validate_path ?budget ~defects ~compiler ~arch path)
    else None
  in
  {
    outcome;
    static_findings;
    agreement = agreement_of outcome static_findings;
    validation;
  }
