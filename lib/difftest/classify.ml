(* Defect identification (§5.3): map each observed difference to a root
   cause.  The paper counts "a defect only once regardless of how many
   execution paths it led to a failure", so causes are stable string
   identifiers; reports aggregate paths per cause. *)

open Difference
module Op = Bytecodes.Opcode

let float_prims_missing_receiver_check =
  [ 41; 42; 43; 44; 45; 46; 47; 48; 49; 50; 51; 52; 55 ]

let rec classify_genuine ~(compiler : Jit.Cogits.compiler)
    ~(subject : Concolic.Path.subject)
    ~(exit_ : Interpreter.Exit_condition.t) ~(observed : observed) :
    family * string =
  match (observed, subject) with
  | _, Concolic.Path.Bytecode_seq ops -> (
      (* sequence testing: attribute the difference to the responsible
         instruction, identified by the send selector that one engine
         took and the other did not *)
      let responsible_selector =
        match (exit_, observed) with
        | Interpreter.Exit_condition.Message_send { selector; _ }, _ ->
            Some selector
        | _, O_send info -> Some info.Machine.Machine_code.selector
        | _ -> None
      in
      let as_opcode = function
        | Interpreter.Exit_condition.Special sel -> Some (Op.Arith_special sel)
        | Interpreter.Exit_condition.Common sel -> Some (Op.Common_special sel)
        | _ -> None
      in
      match Option.bind responsible_selector as_opcode with
      | Some op ->
          classify_genuine ~compiler ~subject:(Concolic.Path.Bytecode op)
            ~exit_ ~observed
      | None ->
          ( Optimisation_difference,
            Printf.sprintf "sequence-difference-%s"
              (String.concat ";" (List.map Op.mnemonic ops)) ))
  | O_not_compiled _, Concolic.Path.Native id ->
      ( Missing_functionality,
        Printf.sprintf "missing-template-%s" (Interpreter.Primitive_table.name id) )
  | O_not_compiled msg, Concolic.Path.Bytecode op ->
      ( Missing_functionality,
        Printf.sprintf "missing-bytecode-support-%s(%s)" (Op.mnemonic op) msg )
  | O_simulation_error msg, _ -> (Simulation_error, msg)
  | _, Concolic.Path.Native 40 when exit_ = Interpreter.Exit_condition.Success
    ->
      (* the interpreter succeeded where the (correct) compiled version
         failed: the receiver check is missing in the interpreter *)
      ( Missing_interpreter_type_check,
        "primAsFloat-receiver-check-compiled-away" )
  | _, Concolic.Path.Native id
    when List.mem id float_prims_missing_receiver_check
         && exit_ = Interpreter.Exit_condition.Failure ->
      (* the interpreter failed its receiver check; the compiled template
         unboxed blindly (usually a segfault) *)
      ( Missing_compiled_type_check,
        Printf.sprintf "%s-missing-compiled-receiver-check"
          (Interpreter.Primitive_table.name id) )
  | _, Concolic.Path.Native (14 | 15 | 16) ->
      (Behavioural_difference, "template-bitwise-unsigned-operands")
  | _, Concolic.Path.Native 17 ->
      (Behavioural_difference, "template-bitshift-negative-distance")
  | _, Concolic.Path.Bytecode (Op.Arith_special sel) -> (
      let prefix = Jit.Cogits.short_name compiler in
      match sel with
      | Op.Sel_bit_and ->
          if compiler = Jit.Cogits.Simple_stack_cogit then
            (Optimisation_difference, "simple-no-bitwise-type-prediction")
          else (Behavioural_difference, "bc-bitand-unsigned-operands")
      | Op.Sel_bit_or ->
          if compiler = Jit.Cogits.Simple_stack_cogit then
            (Optimisation_difference, "simple-no-bitwise-type-prediction")
          else (Behavioural_difference, "bc-bitor-unsigned-operands")
      | Op.Sel_bit_shift ->
          if compiler = Jit.Cogits.Simple_stack_cogit then
            (Optimisation_difference, "simple-no-bitwise-type-prediction")
          else (Behavioural_difference, "bc-bitshift-negative-distance")
      | Op.Sel_add | Op.Sel_sub ->
          if compiler = Jit.Cogits.Simple_stack_cogit then
            (* on an integer path the compiled send is a missing integer
               prediction; on a float path a missing float prediction —
               Simple inlines neither, so tell them apart by what the
               interpreter managed to inline (it succeeded either way) *)
            (Optimisation_difference, "simple-no-int-addsub-prediction")
          else (Optimisation_difference, prefix ^ "-no-float-arith-prediction")
      | Op.Sel_mul | Op.Sel_int_div | Op.Sel_mod ->
          if compiler = Jit.Cogits.Simple_stack_cogit then
            (Optimisation_difference, "simple-no-int-muldiv-prediction")
          else (Optimisation_difference, prefix ^ "-no-float-arith-prediction")
      | Op.Sel_divide ->
          (* [/] has a float fast path only; its missing prediction falls
             under the mul/div family for the Simple compiler *)
          if compiler = Jit.Cogits.Simple_stack_cogit then
            (Optimisation_difference, "simple-no-float-muldiv-prediction")
          else (Optimisation_difference, prefix ^ "-no-float-arith-prediction")
      | Op.Sel_lt | Op.Sel_gt | Op.Sel_le | Op.Sel_ge | Op.Sel_eq | Op.Sel_ne
        ->
          (Optimisation_difference, "simple-no-int-compare-prediction")
      | Op.Sel_make_point ->
          (Optimisation_difference, prefix ^ "-make-point-difference"))
  | _, Concolic.Path.Bytecode (Op.Common_special Op.Sel_bit_xor) ->
      ( Optimisation_difference,
        Jit.Cogits.short_name compiler ^ "-bitxor-inlined-not-in-interpreter" )
  | _, Concolic.Path.Native id ->
      ( Missing_functionality,
        Printf.sprintf "unclassified-native-%s"
          (Interpreter.Primitive_table.name id) )
  | _, Concolic.Path.Bytecode op ->
      ( Optimisation_difference,
        Printf.sprintf "unclassified-bytecode-%s" (Op.mnemonic op) )

(* A difference observed while a fault targets the compiler under test
   is the planted fault's doing: give it the [Injected_fault] family and
   a cause derived from the operator id, so mutation runs never pollute
   the genuine cause statistics (and dedupe keeps one witness per
   operator, not per coincidental symptom). *)
let classify ~(compiler : Jit.Cogits.compiler)
    ~(subject : Concolic.Path.subject)
    ~(exit_ : Interpreter.Exit_condition.t) ~(observed : observed) :
    family * string =
  match Jit.Fault.current () with
  | Some a when String.equal a.target (Jit.Cogits.short_name compiler) ->
      (Injected_fault, "mutant-" ^ a.op.Jit.Fault.id)
  | _ -> classify_genuine ~compiler ~subject ~exit_ ~observed

(* Seed-aware disambiguation for add/sub/mul on the Simple compiler: the
   interpreter inlines both integer and float arithmetic, so a
   Simple-compiler difference on an integer path and one on a float path
   have different root causes.  The path condition tells them apart. *)
let refine_simple_arith ~(path : Concolic.Path.t) (family, cause) =
  let is_float_path =
    List.exists
      (fun c ->
        match (c : Symbolic.Path_condition.clause).cond with
        | Symbolic.Sym_expr.Is_float_object _ -> true
        | _ -> false)
      path.Concolic.Path.path_condition
  in
  match cause with
  | "simple-no-int-addsub-prediction" when is_float_path ->
      (family, "simple-no-float-addsub-prediction")
  | "simple-no-int-muldiv-prediction" when is_float_path ->
      (family, "simple-no-float-muldiv-prediction")
  | _ -> (family, cause)

(* Map a static-verifier finding family onto the dynamic defect-family
   taxonomy.  [None] for structural findings (malformed artifacts),
   which have no dynamic counterpart in Table 3. *)
let family_of_static : Verify.Finding.family -> Difference.family option =
  function
  | Verify.Finding.Missing_compiled_type_check ->
      Some Difference.Missing_compiled_type_check
  | Verify.Finding.Optimisation_difference ->
      Some Difference.Optimisation_difference
  | Verify.Finding.Behavioural_difference ->
      Some Difference.Behavioural_difference
  | Verify.Finding.Missing_functionality ->
      Some Difference.Missing_functionality
  | Verify.Finding.Simulation_error -> Some Difference.Simulation_error
  | Verify.Finding.Structural -> None

(* Counterexample deduplication (§5.3's "a defect only once"): collapse
   witnesses sharing one root cause — same compiler, same family, same
   cause id — before they reach the campaign tables, keeping the witness
   with the shortest path key (the most minimal reproducer) per cause,
   breaking ties lexicographically for determinism. *)
let dedupe_witnesses (ds : Difference.t list) : Difference.t list =
  let best : (string, Difference.t) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (d : Difference.t) ->
      let key =
        Printf.sprintf "%s|%s|%s|%s"
          (Jit.Cogits.short_name d.compiler)
          (Jit.Codegen.arch_name d.arch)
          (Difference.family_name d.family)
          d.cause
      in
      match Hashtbl.find_opt best key with
      | None ->
          Hashtbl.replace best key d;
          order := key :: !order
      | Some prev ->
          let better =
            let lp = String.length prev.path_key
            and ld = String.length d.path_key in
            ld < lp || (ld = lp && String.compare d.path_key prev.path_key < 0)
          in
          if better then Hashtbl.replace best key d)
    ds;
  List.rev_map (fun key -> Hashtbl.find best key) !order
