(** Defect identification (§5.3): map each observed difference to a root
    cause.  The paper counts "a defect only once regardless of how many
    execution paths it led to a failure"; causes are stable string
    identifiers and reports aggregate paths per cause. *)

val float_prims_missing_receiver_check : int list
(** The 13 float native methods whose compiled templates skip the
    receiver type check (the Missing-compiled-type-check seeds). *)

val classify :
  compiler:Jit.Cogits.compiler ->
  subject:Concolic.Path.subject ->
  exit_:Interpreter.Exit_condition.t ->
  observed:Difference.observed ->
  Difference.family * string
(** The defect family and root-cause id of a difference.  Sequence
    subjects are attributed to the responsible instruction (identified by
    the send selector one engine took and the other did not). *)

val refine_simple_arith :
  path:Concolic.Path.t ->
  Difference.family * string ->
  Difference.family * string
(** Disambiguate the Simple compiler's integer- vs float-prediction
    causes using the path condition (a float path mentions
    [Is_float_object]). *)

val family_of_static : Verify.Finding.family -> Difference.family option
(** Map a static-verifier finding family onto the dynamic defect-family
    taxonomy; [None] for structural findings, which have no dynamic
    counterpart. *)

val dedupe_witnesses : Difference.t list -> Difference.t list
(** Collapse witnesses sharing one root cause (compiler, arch, family,
    cause), keeping the shortest-path-key reproducer per cause; order of
    first appearance is preserved.  Applied before campaign
    aggregation. *)
