(** Differences between interpreter and compiled executions, classified
    into the six defect families of the paper's Table 3. *)

type family =
  | Missing_interpreter_type_check
  | Missing_compiled_type_check
  | Optimisation_difference
  | Behavioural_difference
  | Missing_functionality
  | Simulation_error
  | Injected_fault
      (** mutation engine: a systematically planted compiler fault; kept
          out of the six genuine families so mutation runs never pollute
          cause statistics *)

val family_name : family -> string
val all_families : family list
val equal_family : family -> family -> bool
val compare_family : family -> family -> int
val pp_family : Format.formatter -> family -> unit
val show_family : family -> string

(** What the compiled execution was observed to do. *)
type observed =
  | O_success of { marker : int }  (** hit a success breakpoint *)
  | O_send of Machine.Machine_code.send_info
  | O_return of int
  | O_failure  (** native method fell through to the breakpoint *)
  | O_segfault
  | O_simulation_error of string
  | O_not_compiled of string
  | O_out_of_fuel

val observed_to_string : observed -> string

type kind =
  | Exit_mismatch of {
      expected : Interpreter.Exit_condition.t;
      observed : observed;
    }
  | Value_mismatch of { what : string }

type t = {
  compiler : Jit.Cogits.compiler;
  arch : Jit.Codegen.arch;
  subject : Concolic.Path.subject;
  path_key : string;
  kind : kind;
  family : family;
  cause : string;
      (** root-cause identifier; the paper counts defects once per cause *)
}

val to_string : t -> string
