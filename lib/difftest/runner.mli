(** The differential test runner (§2.4, §4.2): curate each explored path
    (re-solving its condition, mirroring the paper's curated-paths
    column), rebuild the concrete input deterministically, compile with
    the compiler under test, run the machine code on the CPU simulator,
    and validate exit condition and observable outputs against the
    recorded output constraints. *)

type outcome =
  | Pass
  | Expected_failure
      (** invalid-frame paths and unsafe byte-code faults (§3.4) *)
  | Curated_out of string
      (** the solver cannot re-create this path's input (§4.3 limits) *)
  | Diff of Difference.t

val is_diff : outcome -> bool

val run_path :
  defects:Interpreter.Defects.t ->
  compiler:Jit.Cogits.compiler ->
  arch:Jit.Codegen.arch ->
  Concolic.Path.t ->
  outcome
(** Differential-test one explored path against one compiler on one ISA.
    @raise Invalid_argument on a compiler/subject kind mismatch. *)

(** {1 Static pre-execution verification}

    Every test also gets a zero-execution verdict from the static
    verifier suite ({!Verify}), cross-checked against the dynamic
    outcome. *)

type agreement =
  | Both_clean  (** no static finding, no dynamic difference *)
  | Both_flagged
      (** a static finding matches the dynamic difference (by root cause
          or by defect family) *)
  | Static_only
      (** the verifier flags the unit but this path passed dynamically *)
  | Dynamic_only  (** a dynamic difference the verifier did not predict *)

(** {1 Solver-backed translation validation (pass 5)}

    Per-path equivalence verdicts from
    {!Verify.Translation_validator}, with every [Refuted] candidate
    confirmed by a concrete replay of its witness model through
    {!run_path} before it counts. *)

type validation =
  | V_proved  (** every machine path aligns with the interpreter summary *)
  | V_refuted of {
      witness : Verify.Translation_validator.witness;
      difference : Difference.t;
          (** the difference the replayed witness reproduced *)
    }
  | V_spurious of Verify.Translation_validator.witness
      (** the witness did not reproduce dynamically: a warning, not a
          refutation *)
  | V_unknown of string
  | V_skipped of string
      (** invalid-frame paths, native calling-convention mismatches *)

val validation_to_string : validation -> string

val validate_path :
  ?budget:int ref ->
  defects:Interpreter.Defects.t ->
  compiler:Jit.Cogits.compiler ->
  arch:Jit.Codegen.arch ->
  Concolic.Path.t ->
  validation
(** Validate one path and replay any refutation witness.  [budget]
    caps solver queries (shared across calls via the ref). *)

type verified = {
  outcome : outcome;
  static_findings : Verify.Finding.t list;
      (** the unit's static verdict (memoized per subject/compiler/arch) *)
  agreement : agreement;
  validation : validation option;
      (** present when [run_path_verified ~validate:true] was asked *)
}

val static_findings :
  defects:Interpreter.Defects.t ->
  compiler:Jit.Cogits.compiler ->
  arch:Jit.Codegen.arch ->
  Concolic.Path.subject ->
  Verify.Finding.t list
(** The static verdict for one compilation unit, restricted to findings
    about [compiler] (cross-compiler differ findings are attributed per
    front-end). *)

val cross_isa_findings :
  defects:Interpreter.Defects.t ->
  compiler:Jit.Cogits.compiler ->
  arches:Jit.Codegen.arch list ->
  Concolic.Path.subject ->
  Verify.Finding.t list
(** Static cross-ISA frame differencing for one compilation unit: the
    subject is lowered once per ISA in [arches] and the abstract frame
    summaries are compared pairwise ([Verify.Frame_diff.differ_arches]).
    Findings carry a pair label such as ["x86+rv32"] in their [arch]
    field.  Empty when fewer than two ISAs are given.  Memoized per
    (subject, compiler, arch set, defect configuration). *)

val run_path_verified :
  ?validate:bool ->
  ?budget:int ref ->
  defects:Interpreter.Defects.t ->
  compiler:Jit.Cogits.compiler ->
  arch:Jit.Codegen.arch ->
  Concolic.Path.t ->
  verified
(** [run_path] plus the static verdict and the static-vs-dynamic
    agreement for this path.  [validate] (default [false]) additionally
    runs solver-backed translation validation; [budget] caps its solver
    queries. *)
