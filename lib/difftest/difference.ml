(* Differences between interpreter and compiled executions, and their
   classification into the six defect families of the paper's Table 3. *)

type family =
  | Missing_interpreter_type_check
  | Missing_compiled_type_check
  | Optimisation_difference
  | Behavioural_difference
  | Missing_functionality
  | Simulation_error
  | Injected_fault (* mutation engine: a systematically planted compiler fault *)
[@@deriving show { with_path = false }, eq, ord]

let family_name = function
  | Missing_interpreter_type_check -> "Missing interpreter type check"
  | Missing_compiled_type_check -> "Missing compiled type check"
  | Optimisation_difference -> "Optimisation difference"
  | Behavioural_difference -> "Behavioral difference"
  | Missing_functionality -> "Missing Functionality"
  | Simulation_error -> "Simulation Error"
  | Injected_fault -> "Injected fault (mutation)"

let all_families =
  [
    Missing_interpreter_type_check;
    Missing_compiled_type_check;
    Optimisation_difference;
    Behavioural_difference;
    Missing_functionality;
    Simulation_error;
    Injected_fault;
  ]

(* What the compiled execution was observed to do. *)
type observed =
  | O_success of { marker : int } (* hit the success breakpoint *)
  | O_send of Machine.Machine_code.send_info
  | O_return of int
  | O_failure (* native method hit the fall-through breakpoint *)
  | O_segfault
  | O_simulation_error of string
  | O_not_compiled of string
  | O_out_of_fuel

let observed_to_string = function
  | O_success { marker } -> Printf.sprintf "success (marker %d)" marker
  | O_send i ->
      Printf.sprintf "send %s/%d"
        (Interpreter.Exit_condition.selector_name i.selector)
        i.num_args
  | O_return _ -> "method return"
  | O_failure -> "native method failure (breakpoint)"
  | O_segfault -> "segmentation fault"
  | O_simulation_error m -> "simulation error: " ^ m
  | O_not_compiled m -> "not compiled: " ^ m
  | O_out_of_fuel -> "out of fuel"

type kind =
  | Exit_mismatch of { expected : Interpreter.Exit_condition.t; observed : observed }
  | Value_mismatch of { what : string }

type t = {
  compiler : Jit.Cogits.compiler;
  arch : Jit.Codegen.arch;
  subject : Concolic.Path.subject;
  path_key : string;
  kind : kind;
  family : family;
  cause : string; (* root-cause identifier; paper counts defects by cause *)
}

let to_string d =
  Printf.sprintf "[%s/%s] %s: %s — %s (%s)"
    (Jit.Cogits.short_name d.compiler)
    (Jit.Codegen.arch_name d.arch)
    (Concolic.Path.subject_name d.subject)
    (match d.kind with
    | Exit_mismatch { expected; observed } ->
        Printf.sprintf "interpreter: %s, compiled: %s"
          (Interpreter.Exit_condition.to_string expected)
          (observed_to_string observed)
    | Value_mismatch { what } -> "value mismatch: " ^ what)
    (family_name d.family) d.cause
