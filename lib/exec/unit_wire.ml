(* Serializable unit wire protocol between the campaign coordinator and
   its worker processes (the procpool).

   Framing follows the journal's armouring discipline: every message is
   one text line,

     vmw1|<len:8 hex>|<md5 hex of payload>|<payload, hex-armoured>\n

   where the payload is [Marshal] output.  The length is the payload's
   byte count before armouring.  Because frames are length-prefixed and
   checksummed, a torn frame (worker killed mid-write), injected
   garbage, or a stray print that escaped onto the protocol pipe is a
   counted incident the decoder resynchronises past — [Marshal] never
   sees unverified bytes, exactly like the store and the journal.

   The decoder resynchronises *within* a line too: garbage written
   without a trailing newline glues onto the front of the next valid
   frame, so after a failed decode it scans for the magic at a later
   offset and retries the suffix. *)

type t = {
  w_index : int; (* stable global unit index — the merge key *)
  w_attempt : int; (* supervisor-side deal count, 1-based *)
  w_key : string; (* journal unit key, for logs and sanity checks *)
  w_payload : string; (* marshalled task-specific unit description *)
}

type verdict =
  | W_ok of string (* marshalled task-specific result *)
  | W_timed_out of string
  | W_crashed of { exn : string; backtrace : string }

type msg =
  | Hello of string (* coordinator -> worker: marshalled run config *)
  | Unit of t (* coordinator -> worker: one unit to execute *)
  | Ack of { index : int; attempt : int } (* worker heartbeat at unit start *)
  | Result of { index : int; attempt : int; attempts : int; verdict : verdict }
  | Bye (* coordinator -> worker: drain and exit 0 *)

let magic = "vmw1|"

(* --- hex armour (the journal's convention) --- *)

let to_hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    s;
  Buffer.contents buf

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then failwith "odd hex";
  String.init (n / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

(* --- pure frame codec --- *)

let encode m =
  let payload = Marshal.to_string m [] in
  Printf.sprintf "%s%08x|%s|%s\n" magic (String.length payload)
    (Digest.to_hex (Digest.string payload))
    (to_hex payload)

(* [line] excludes the trailing newline.  Any malformation — wrong
   magic, bad length, checksum mismatch, unmarshallable payload — is
   [None], never an exception. *)
let decode_line line : msg option =
  let ml = String.length magic in
  (* vmw1| 8-hex | 32-hex | at least zero payload chars *)
  if String.length line < ml + 8 + 1 + 32 + 1 then None
  else if String.sub line 0 ml <> magic then None
  else
    match int_of_string ("0x" ^ String.sub line ml 8) with
    | exception _ -> None
    | len ->
        if len < 0 || line.[ml + 8] <> '|' || line.[ml + 41] <> '|' then None
        else
          let sum = String.sub line (ml + 9) 32 in
          let hex_start = ml + 42 in
          if String.length line <> hex_start + (2 * len) then None
          else begin
            match of_hex (String.sub line hex_start (2 * len)) with
            | exception _ -> None
            | payload ->
                if Digest.to_hex (Digest.string payload) <> sum then None
                else ( try Some (Marshal.from_string payload 0 : msg) with _ -> None)
          end

(* --- incremental decoder with garbage accounting --- *)

type decoder = {
  mutable dpending : string; (* bytes received, no complete line yet *)
  dqueue : msg Queue.t;
  mutable dgarbage : int; (* invalid lines / torn frames recovered past *)
}

let decoder () = { dpending = ""; dqueue = Queue.create (); dgarbage = 0 }

let find_magic line from =
  let n = String.length line and m = String.length magic in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = magic then Some i
    else go (i + 1)
  in
  go from

let rec handle_line d line =
  if String.length line <> 0 then
    match decode_line line with
    | Some m -> Queue.add m d.dqueue
    | None -> (
        d.dgarbage <- d.dgarbage + 1;
        (* resync: garbage glued in front of a valid frame *)
        match find_magic line 1 with
        | Some i -> handle_line d (String.sub line i (String.length line - i))
        | None -> ())

let feed d s =
  d.dpending <- d.dpending ^ s;
  let rec go () =
    match String.index_opt d.dpending '\n' with
    | None -> ()
    | Some i ->
        let line = String.sub d.dpending 0 i in
        d.dpending <-
          String.sub d.dpending (i + 1) (String.length d.dpending - i - 1);
        handle_line d line;
        go ()
  in
  go ()

let next d = Queue.take_opt d.dqueue
let garbage d = d.dgarbage
let pending d = String.length d.dpending

(* A writer that died mid-frame leaves a newline-less tail; at EOF it
   is either a complete frame missing only its newline or a counted
   torn frame. *)
let eof d =
  let rest = d.dpending in
  d.dpending <- "";
  if String.length rest <> 0 then handle_line d rest
