(** Fault-tolerant unit supervisor for campaign/validate/mutate runs.

    Wraps each unit of a run — one (compiler × subject) cell, one
    mutant, one validation target — in an isolated, budgeted,
    retryable execution and returns a per-unit verdict from the
    lattice [Ok | Timed_out | Unit_crashed | Worker_died | Quarantined]
    instead of letting one misbehaving unit kill or hang the whole
    matrix.  [Worker_died] is produced by the {!Procpool} tier: the
    unit's disposable worker process was killed, crashed, or went
    silent past its heartbeat deadline, and re-dealing exhausted the
    retry budget.

    Everything is deterministic by construction so aggregate output
    stays byte-identical at any [-j] (and, via the procpool's
    stable-index merge, at any [--workers]):
    {ul
    {- timeouts come from the {!Budget} fuel watchdog, which counts
       work steps, not wall time (the optional deadline is a coarse
       safety net and should stay far above any real unit);}
    {- retry backoff is a seed-derived spin, not a wall-clock sleep;}
    {- the per-group circuit breaker (trips after [breaker_k]
       consecutive fatalities within one group, quarantining the rest
       of that group) is decided by {!breaker_postpass} over units in
       stable input order, never by completion order.  Workers may
       additionally skip a unit early when they can already {e prove}
       the breaker has tripped before it — [breaker_k] adjacent,
       completed fatalities at the immediately preceding group
       positions — which can only agree with the post-pass, so the
       advisory skip saves work without costing determinism.}} *)

type failure = { exn : string; backtrace : string }

type 'a verdict =
  | Ok of 'a
  | Timed_out of string  (** budget exhausted; payload is ["fuel"] or ["deadline"] *)
  | Unit_crashed of failure
  | Worker_died of string
      (** the unit's worker process died (payload: wait status such as
          ["sigkill"], ["exit 2"], or ["deadline sigkill"] for a
          preemptive kill) and re-dealing exhausted the retries *)
  | Quarantined of string
      (** skipped because the group's circuit breaker tripped (payload:
          the group key) or the run was interrupted (["interrupted"]) *)

type 'a outcome = { verdict : 'a verdict; attempts : int }
(** [attempts] is how many executions the unit consumed (0 for
    quarantined-without-running). *)

type counts = {
  c_ok : int;
  c_timed_out : int;
  c_crashed : int;
  c_worker_died : int;
  c_quarantined : int;
  c_retries : int;  (** extra attempts beyond the first, summed *)
}

type policy = {
  retries : int;  (** extra attempts after a failed first one *)
  fuel : int option;  (** per-attempt step budget (see {!Budget}) *)
  deadline_s : float option;  (** per-attempt monotonic deadline *)
  breaker_k : int;  (** consecutive fatalities tripping the breaker; 0 disables *)
  seed : int;  (** backoff derivation seed *)
}

val default_policy : policy
(** 1 retry, 50M fuel, no deadline, breaker at 4, seed 0.  The fuel
    default is orders of magnitude above any real unit (a full
    campaign unit charges a few hundred thousand steps at most), so
    pristine runs never time out, while an injected hang is contained
    in well under a second. *)

val run :
  ?jobs:int ->
  ?policy:policy ->
  ?chaos:(int -> Chaos.kind option) ->
  ?precomputed:(int -> 'b outcome option) ->
  ?record:(int -> 'b outcome -> unit) ->
  group:('u -> string) ->
  ('u -> 'b) ->
  'u array ->
  'b outcome array
(** [run ~group f units] supervises [f] over every unit and returns
    outcomes in stable input order.

    [chaos i] arms a {!Chaos} fault for every attempt of unit [i].
    [precomputed i] (resume path) supplies a journaled outcome; such
    units are not executed and not re-recorded.  [record i outcome] is
    the journal sink, called under an internal mutex as units complete
    (completion order — only aggregate results are [-j]-stable);
    quarantined units are not recorded so a resumed run re-derives
    quarantine from the same crash evidence.  [group u] keys the
    circuit breaker (typically the compiler short name).

    If {!Interrupt.requested} becomes true, units not yet started are
    given [Quarantined "interrupted"] (attempts 0, never recorded) and
    the run drains quickly instead of dying mid-journal-write. *)

val breaker_postpass :
  breaker_k:int -> group:('u -> string) -> 'u array -> 'b outcome array -> unit
(** Apply the deterministic circuit breaker to [outcomes] in place
    (stable input order per group, [Unit_crashed]/[Worker_died] feed
    the streak).  Exposed so the procpool merge applies exactly the
    in-process rule after collecting worker results. *)

val backoff : policy:policy -> idx:int -> attempt:int -> unit
(** Seed-derived retry backoff spin — exported so worker processes
    replicate the coordinator's retry behaviour exactly. *)

val tally : 'a outcome array -> counts
(** Aggregate verdict counts over a slice of outcomes. *)

val verdict_name : 'a verdict -> string
(** ["ok" | "timed_out" | "crashed" | "worker_died" | "quarantined"] —
    stable names for tables, JSON, and journals. *)

val verdict_detail : 'a verdict -> string
(** Human-readable detail: exhaustion reason, exception text, wait
    status, or the quarantining group; [""] for [Ok]. *)
