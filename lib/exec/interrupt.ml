(* Cooperative SIGINT/SIGTERM handling for long campaign runs.

   The handler only sets a flag: the supervisor and the worker pool
   poll it at unit boundaries, so an interrupted run kills its workers,
   flushes its journal, and prints partial aggregates (tagged
   [interrupted: true]) instead of losing the tail of an unsynced
   journal to an abrupt exit.  The CLI exits 130 after reporting. *)

let flag = Atomic.make false
let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    let handle _ = Atomic.set flag true in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle handle)
     with Invalid_argument _ | Sys_error _ -> ());
    try Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)
    with Invalid_argument _ | Sys_error _ -> ()
  end

let requested () = Atomic.get flag
let request () = Atomic.set flag true
let reset () = Atomic.set flag false
