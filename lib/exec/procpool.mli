(** Multi-process worker pool for crash-only campaign execution.

    The coordinator fork/execs [workers] copies of the running binary
    (which must re-enter {!worker_main} when invoked with
    [worker_argv]), deals one {!Unit_wire.t} at a time to each worker
    over pipes, and merges results by stable unit position so the
    caller's aggregate output is byte-identical at any worker count.

    Robustness properties (each exercised by the {!Chaos} process
    faults and gated in CI):
    {ul
    {- a worker death (signal, nonzero exit) loses at most the one unit
       in flight; the unit is re-dealt while [retries] attempts remain
       and becomes [P_died] after that;}
    {- a worker silent past [deadline_s] since its last frame is
       preemptively SIGKILLed (catches SIGSTOP freezes and native
       spins the cooperative {!Budget} watchdog cannot see) — its
       status string gains a ["deadline "] prefix;}
    {- [breaker_k] consecutive deaths on one slot without a completed
       unit retire the slot permanently (no respawn);}
    {- torn or garbage bytes on a result pipe are counted and resynced
       past by the {!Unit_wire} decoder, never fatal;}
    {- if {!Interrupt.requested} becomes true, all workers are killed
       and unfinished units are returned as [P_not_run].}} *)

type outcome =
  | P_result of Unit_wire.verdict * int
      (** worker-reported verdict and the attempts it consumed *)
  | P_died of { status : string; attempts : int }
      (** the worker died with [status] (e.g. ["signal sigkill"],
          ["exit 2"], ["deadline signal sigkill"]) and the retry
          budget is exhausted *)
  | P_not_run  (** never dealt (interrupt, or every slot retired) *)

type stats = {
  p_workers : int;  (** effective pool size *)
  p_spawned : int;  (** processes launched, including respawns *)
  p_deaths : int;  (** unexpected worker deaths *)
  p_preempted : int;  (** deadline SIGKILLs issued *)
  p_redeals : int;  (** units re-dealt after a death *)
  p_garbage : int;  (** torn/garbage/stray frames discarded *)
  p_retired : int;  (** slots retired by the per-slot breaker *)
}
(** [p_deaths], [p_preempted], [p_redeals] and [p_garbage] are
    functions of the unit list and the fault plan, so they are safe to
    report in deterministic JSON; [p_spawned]/[p_retired] can vary with
    scheduling and belong in human-facing output only. *)

val run :
  workers:int ->
  ?deadline_s:float ->
  ?retries:int ->
  ?breaker_k:int ->
  ?worker_argv:string array ->
  hello:string ->
  ?on_final:(int -> outcome -> unit) ->
  Unit_wire.t array ->
  outcome array * stats
(** [run ~workers ~hello units] executes every unit in a disposable
    worker process and returns outcomes indexed like [units], plus
    pool statistics.  [hello] is the opaque configuration payload
    delivered to each worker before any unit (the campaign marshals
    its run configuration here).  [on_final i o] fires once per unit
    when its outcome is final — the journal sink.  [units.(i).w_index]
    values must be unique (they echo back in result frames);
    [w_attempt] is overwritten with the coordinator's deal count so
    worker-side retries continue the shared attempt budget. *)

val worker_main : (string -> Unit_wire.t -> Unit_wire.verdict * int) -> unit
(** Worker-process entry point; never returns.  [make] is applied once
    to the [Hello] configuration payload, and the resulting handler
    maps each dealt unit to [(verdict, attempts)].  Protocol frames
    travel on the process's original stdin/stdout; fd 1 is re-pointed
    at [/dev/null] before any unit runs so stray prints cannot corrupt
    the stream.  Calls {!Chaos.mark_worker} so process-level faults
    armed for the dealt units fire here, in the disposable process. *)

val status_string : Unix.process_status -> string
(** Stable rendering of a wait status (["exit 2"], ["signal sigkill"],
    ["stopped sigstop"]) — exported for tests. *)
