type status = Ok | Timed_out | Crashed | Worker_died

type entry = {
  key : string;
  status : status;
  attempts : int;
  detail : string;
  payload : string;
}

let status_name = function
  | Ok -> "ok"
  | Timed_out -> "timed_out"
  | Crashed -> "crashed"
  | Worker_died -> "worker_died"

let status_of_name = function
  | "ok" -> Ok
  | "timed_out" -> Timed_out
  | "crashed" -> Crashed
  | "worker_died" -> Worker_died
  | s -> failwith ("unknown journal status " ^ s)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then failwith "odd hex payload";
  String.init (n / 2) (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let write_header oc ~config =
  Printf.fprintf oc "{\"journal\":\"vmtest-supervise\",\"version\":1,\"config\":\"%s\"}\n"
    (json_escape config);
  flush oc

let append ?(sync = false) oc e =
  Printf.fprintf oc
    "{\"key\":\"%s\",\"status\":\"%s\",\"attempts\":%d,\"detail\":\"%s\",\"payload\":\"%s\"}\n"
    (json_escape e.key) (status_name e.status) e.attempts (json_escape e.detail)
    (to_hex e.payload);
  flush oc;
  (* [--journal-sync]: force the line to stable storage so even a
     power-cut-style kill resumes byte-identically.  The default only
     flushes to the OS — a killed *process* loses nothing, a killed
     *machine* may lose the tail (and resume then recomputes it). *)
  if sync then try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

(* Minimal parser for the exact shape we write: enough JSON to read our
   own lines back, never a general-purpose parser. *)

let parse_string s pos =
  if String.length s <= !pos || s.[!pos] <> '"' then failwith "expected string";
  incr pos;
  let buf = Buffer.create 32 in
  let rec go () =
    if !pos >= String.length s then failwith "unterminated string";
    match s.[!pos] with
    | '"' -> incr pos; Buffer.contents buf
    | '\\' ->
        incr pos;
        if !pos >= String.length s then failwith "dangling escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 >= String.length s then failwith "short \\u escape";
            let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
            pos := !pos + 4;
            if code > 0xff then failwith "non-latin \\u escape"
            else Buffer.add_char buf (Char.chr code)
        | c -> failwith (Printf.sprintf "unknown escape \\%c" c));
        incr pos;
        go ()
    | c -> Buffer.add_char buf c; incr pos; go ()
  in
  go ()

let expect s pos lit =
  let n = String.length lit in
  if !pos + n > String.length s || String.sub s !pos n <> lit then
    failwith ("expected " ^ lit);
  pos := !pos + n

let parse_int s pos =
  let start = !pos in
  while
    !pos < String.length s && (match s.[!pos] with '0' .. '9' | '-' -> true | _ -> false)
  do
    incr pos
  done;
  if !pos = start then failwith "expected int";
  int_of_string (String.sub s start (!pos - start))

let parse_header line =
  let pos = ref 0 in
  expect line pos "{\"journal\":\"vmtest-supervise\",\"version\":1,\"config\":";
  let config = parse_string line pos in
  expect line pos "}";
  config

let parse_entry line =
  let pos = ref 0 in
  expect line pos "{\"key\":";
  let key = parse_string line pos in
  expect line pos ",\"status\":";
  let status = status_of_name (parse_string line pos) in
  expect line pos ",\"attempts\":";
  let attempts = parse_int line pos in
  expect line pos ",\"detail\":";
  let detail = parse_string line pos in
  expect line pos ",\"payload\":";
  let payload = of_hex (parse_string line pos) in
  expect line pos "}";
  { key; status; attempts; detail; payload }

let load ~config file =
  let tbl = Hashtbl.create 64 in
  (match open_in file with
  | exception Sys_error msg ->
      Printf.eprintf "warning: cannot read journal %s (%s); starting fresh\n%!" file msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file ->
              Printf.eprintf "warning: journal %s is empty; starting fresh\n%!" file
          | first -> (
              match parse_header first with
              | exception _ ->
                  Printf.eprintf
                    "warning: journal %s has no valid header; ignoring it\n%!" file
              | found when found <> config ->
                  Printf.eprintf
                    "warning: journal %s was written under a different configuration; \
                     ignoring it\n\
                     %!"
                    file
              | _ ->
                  let rec go () =
                    match input_line ic with
                    | exception End_of_file -> ()
                    | line ->
                        (match parse_entry line with
                        | e -> Hashtbl.replace tbl e.key e
                        | exception _ -> () (* torn or foreign line: skip *));
                        go ()
                  in
                  go ())));
  tbl
