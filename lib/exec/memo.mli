(** Sharded concurrent memo table with in-flight deduplication.

    Safe to share across domains.  The first caller to ask for a key
    computes it (outside the shard lock); concurrent callers for the
    same key block until the result lands and then share it, so an
    expensive computation — a solver query, a concolic exploration —
    runs at most once per key even under [-j].  If the computation
    raises, the key is released and waiters retry it themselves.

    Hit/miss counters live per shard, bumped under the shard lock the
    caller already holds, and are summed on {!stats} — no globally
    shared cache line on the hot path.  [hits + misses] equals the
    number of {!find_or_add} calls that completed (the accounting
    invariant the CI bench smoke checks). *)

type ('k, 'v) t

val create : ?shards:int -> unit -> ('k, 'v) t
(** [shards] (rounded up to a power of two) bounds lock contention;
    keys are distributed by [Hashtbl.hash].  The default scales with
    the machine: [max 16 (4 * Domain.recommended_domain_count ())]. *)

val find_or_add : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v
(** [find_or_add t k compute] returns the cached value for [k], or runs
    [compute k] (at most once per key across all domains) and caches
    it.  Counts a miss for the caller that computes, a hit for every
    caller served from cache — including those that waited on an
    in-flight computation. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Peek without computing or touching the counters.  Returns [None]
    for absent and in-flight keys. *)

type stats = { hits : int; misses : int }

val stats : ('k, 'v) t -> stats
val length : ('k, 'v) t -> int
(** Number of completed entries resident in the table. *)

val clear : ('k, 'v) t -> unit
(** Drop all completed entries and zero the counters.  Entries being
    computed concurrently land after the clear (they are not lost, but
    the barrier is not atomic with respect to in-flight work). *)
