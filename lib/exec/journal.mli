(** Append-only JSONL checkpoint journal for supervised runs.

    One line per {e completed} unit (raw outcome, before the circuit
    breaker's post-pass — so a resumed run re-derives quarantines
    deterministically from the same inputs).  The first line is a
    header carrying a configuration fingerprint; {!load} ignores a
    journal whose fingerprint does not match the resuming run, and
    skips unparseable lines, so resuming from a truncated journal (a
    killed run's torn last write) degrades to recomputing the missing
    units rather than failing.

    Lines are written under the supervisor's journal mutex in
    completion order, which varies with [-j]; only the {e aggregate}
    output of a resumed run is byte-identical, never the journal
    itself. *)

type status = Ok | Timed_out | Crashed | Worker_died

type entry = {
  key : string;  (** stable unit key, e.g. ["s2r|dup"] *)
  status : status;
  attempts : int;
  detail : string;  (** exhaustion reason or exception text; [""] for Ok *)
  payload : string;
      (** unit result bytes (typically [Marshal] output), hex-armoured
          on disk; [""] for non-Ok *)
}

val write_header : out_channel -> config:string -> unit
(** Emit the header line.  Call once when creating a fresh journal;
    appending to an existing journal keeps its header. *)

val append : ?sync:bool -> out_channel -> entry -> unit
(** Emit one entry line and flush, so a killed run loses at most the
    line being written.  With [~sync:true] ([--journal-sync]) the line
    is also [fsync]ed to stable storage, extending the guarantee from
    process kills to power-cut-style machine kills; the default's
    weaker guarantee merely degrades resume to recomputing a lost
    tail. *)

val load : config:string -> string -> (string, entry) Hashtbl.t
(** Parse a journal back into a key-indexed table (last entry wins).
    Returns an empty table — after a warning on stderr — when the file
    is missing, has no parseable header, or was written under a
    different configuration fingerprint. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON double-quoted literal. *)
