(* The persistent content-addressed cache (the on-disk counterpart of
   {!Memo}).

   Layout: one file per entry under a two-level sharded directory,

     <dir>/<s>/<h>    where <s><h> = md5_hex(namespace NUL key)

   so entries are addressed purely by content (namespace + full cache
   key), never by enumeration order, and concurrent writers of the same
   key write the same bytes.  Each entry is a JSON header line followed
   by the raw payload:

     {"store":"vmtest-store","version":1,"ns":"<hex>","key":"<hex>",
      "len":N,"sum":"<md5 hex of payload>"}
     <payload bytes>

   The header records the *full* namespace and key (hex-armoured), so a
   read verifies it got the entry it asked for — an md5 collision or a
   foreign file is a miss, not a wrong answer.  Torn writes, truncation,
   bit flips, and version/format drift are all tolerated exactly like
   the supervision journal: any anomaly makes the entry a miss, never a
   crash, and the payload checksum is verified *before* the bytes are
   handed back (callers unmarshal them, and [Marshal] must never see
   unverified input).

   Writes go through a temp file + [Sys.rename] so a reader never
   observes a half-written entry under the final name.  Two processes
   racing on the same key write identical bytes (entries are
   deterministic per key), so the race is benign whichever rename wins.

   Key discipline: the namespace carries the layer name and its schema
   version (e.g. "path-summary:1" — bump it whenever the marshalled
   type changes); the key carries the config fingerprint of everything
   the cached value depends on, including {!Jit.Fault.cache_tag} for
   layers whose values depend on compiled code, so mutant entries can
   never hit pristine lookups. *)

type t = {
  dir : string;
  hits : int Atomic.t; (* valid entry found *)
  misses : int Atomic.t; (* nothing usable on disk *)
  loads : int Atomic.t; (* read attempts against an existing file *)
  writes : int Atomic.t; (* entries persisted *)
}

type stats = { hits : int; misses : int; loads : int; writes : int }

let open_store ~dir =
  {
    dir;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    loads = Atomic.make 0;
    writes = Atomic.make 0;
  }

let dir t = t.dir

let stats (t : t) : stats =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    loads = Atomic.get t.loads;
    writes = Atomic.get t.writes;
  }

let reset_stats (t : t) =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.loads 0;
  Atomic.set t.writes 0

(* --- hex armour (the journal's convention) --- *)

let to_hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    s;
  Buffer.contents buf

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then failwith "odd hex";
  String.init (n / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

(* --- addressing --- *)

let entry_path t ~ns ~key =
  let h = Digest.to_hex (Digest.string (ns ^ "\x00" ^ key)) in
  Filename.concat t.dir
    (Filename.concat (String.sub h 0 2) (String.sub h 2 (String.length h - 2)))

let ensure_dir d =
  if not (Sys.file_exists d) then
    try Sys.mkdir d 0o755 with Sys_error _ -> ()

(* --- entry format --- *)

let header ~ns ~key payload =
  Printf.sprintf
    "{\"store\":\"vmtest-store\",\"version\":1,\"ns\":\"%s\",\"key\":\"%s\",\"len\":%d,\"sum\":\"%s\"}\n"
    (to_hex ns) (to_hex key) (String.length payload)
    (Digest.to_hex (Digest.string payload))

(* Minimal parser for the exact header we write (journal style: enough
   to read our own lines back, never a general-purpose parser). *)

let expect line pos lit =
  let n = String.length lit in
  if !pos + n > String.length line || String.sub line !pos n <> lit then
    failwith ("expected " ^ lit);
  pos := !pos + n

let parse_until line pos stop =
  let start = !pos in
  while !pos < String.length line && line.[!pos] <> stop do
    incr pos
  done;
  if !pos >= String.length line then failwith "unterminated field";
  String.sub line start (!pos - start)

let parse_header line =
  let pos = ref 0 in
  expect line pos "{\"store\":\"vmtest-store\",\"version\":1,\"ns\":\"";
  let ns = of_hex (parse_until line pos '"') in
  expect line pos "\",\"key\":\"";
  let key = of_hex (parse_until line pos '"') in
  expect line pos "\",\"len\":";
  let len = int_of_string (parse_until line pos ',') in
  expect line pos ",\"sum\":\"";
  let sum = parse_until line pos '"' in
  expect line pos "\"}";
  if !pos <> String.length line then failwith "trailing header bytes";
  (ns, key, len, sum)

(* --- read / write --- *)

let find t ~ns ~key : string option =
  let path = entry_path t ~ns ~key in
  let verdict =
    if not (Sys.file_exists path) then None
    else begin
      Atomic.incr t.loads;
      match open_in_bin path with
      | exception Sys_error _ -> None
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              try
                let line = input_line ic in
                let e_ns, e_key, len, sum = parse_header line in
                if e_ns <> ns || e_key <> key then None
                else if len < 0 then None
                else begin
                  let payload = really_input_string ic len in
                  (* strict: trailing bytes mean the entry was damaged *)
                  if pos_in ic <> in_channel_length ic then None
                  else if Digest.to_hex (Digest.string payload) <> sum then
                    None
                  else Some payload
                end
              with _ -> None)
    end
  in
  (match verdict with
  | Some _ -> Atomic.incr t.hits
  | None -> Atomic.incr t.misses);
  verdict

(* Distinct temp names per writer: two *processes* (or domains) racing
   the same key must each stage into their own file — a shared ".tmp"
   name would interleave their writes and could rename a torn entry
   into place.  Racing renames of complete files remain benign: the
   entries are byte-identical, whichever wins. *)
let tmp_seq = Atomic.make 0

let add t ~ns ~key payload =
  try
    let path = entry_path t ~ns ~key in
    ensure_dir t.dir;
    ensure_dir (Filename.dirname path);
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Atomic.fetch_and_add tmp_seq 1)
    in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (header ~ns ~key payload);
        output_string oc payload);
    Sys.rename tmp path;
    Atomic.incr t.writes
  with Sys_error _ | Failure _ -> () (* a full/read-only disk drops writes *)

(* --- process-global activation --- *)

let active_store : t option Atomic.t = Atomic.make None

let activate d = Atomic.set active_store (Some (open_store ~dir:d))
let deactivate () = Atomic.set active_store None
let active () = Atomic.get active_store
let enabled () = Atomic.get active_store <> None

let activate_opt = function
  | Some d -> activate d
  | None -> (
      match Sys.getenv_opt "VMTEST_STORE" with
      | Some d when String.trim d <> "" -> activate d
      | _ -> ())

let counters () =
  match Atomic.get active_store with
  | None -> { hits = 0; misses = 0; loads = 0; writes = 0 }
  | Some t -> stats t

let reset_counters () =
  match Atomic.get active_store with
  | None -> ()
  | Some t -> reset_stats t

(* --- marshalling wrappers (the memo layers' entry points) --- *)

let lookup ~ns ~key =
  match Atomic.get active_store with
  | None -> None
  | Some t -> (
      match find t ~ns ~key with
      | None -> None
      | Some payload -> (
          (* the checksum already vouched for the bytes; this guard only
             catches schema drift within an unbumped namespace *)
          try Some (Marshal.from_string payload 0) with _ -> None))

let record ~ns ~key v =
  match Atomic.get active_store with
  | None -> ()
  | Some t -> add t ~ns ~key (Marshal.to_string v [])
