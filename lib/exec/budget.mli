(** Cooperative per-unit watchdog: a fuel (step) budget plus an
    optional monotonic-clock deadline, carried in domain-local storage
    and polled at loop heads.

    There are no signals and no preemption: instrumented loops — the
    concolic explorer's worklist loop, the solver's witness search, the
    CPU simulator's step loop — call {!tick} with a small cost, and the
    call raises {!Exhausted} once the budget installed by the
    supervisor is spent.  Because fuel counts deterministic work steps
    (not wall time), fuel-based [Timed_out] verdicts are reproducible
    and independent of [-j]; the deadline is a coarse safety net for
    operators and is off by default.

    A computation that exhausts its budget inside a shared
    {!Memo}-cached computation simply raises out of [find_or_add],
    which releases the in-flight key — partial work is never cached, so
    a timed-out unit cannot poison caches shared with pristine units. *)

exception Exhausted of string
(** Raised by {!tick} when the active budget is spent.  The payload is
    ["fuel"] or ["deadline"]. *)

val with_budget :
  ?fuel:int -> ?deadline_s:float -> (unit -> 'a) -> 'a
(** [with_budget ?fuel ?deadline_s f] runs [f ()] with a fresh budget
    installed in this domain's slot: at most [fuel] tick-cost units of
    instrumented work and at most [deadline_s] seconds on the
    monotonic clock.  Omitting both makes every {!tick} a no-op.  The
    previous budget (if any) is saved and restored, exceptions
    included; nesting replaces rather than stacks. *)

val tick : ?cost:int -> unit -> unit
(** Instrumented-loop poll.  Outside {!with_budget} this is a cheap
    no-op.  Inside, it charges [cost] (default 1) against the fuel and
    every ~16k charged units compares the monotonic clock against the
    deadline; raises {!Exhausted} on either limit. *)

val active : unit -> bool
(** Whether a budget (with at least one limit) is installed in the
    calling domain — used by the chaos harness to refuse to inject an
    uncontainable hang. *)
