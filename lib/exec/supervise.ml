type failure = { exn : string; backtrace : string }

type 'a verdict =
  | Ok of 'a
  | Timed_out of string
  | Unit_crashed of failure
  | Worker_died of string
  | Quarantined of string

type 'a outcome = { verdict : 'a verdict; attempts : int }

type counts = {
  c_ok : int;
  c_timed_out : int;
  c_crashed : int;
  c_worker_died : int;
  c_quarantined : int;
  c_retries : int;
}

type policy = {
  retries : int;
  fuel : int option;
  deadline_s : float option;
  breaker_k : int;
  seed : int;
}

let default_policy =
  { retries = 1; fuel = Some 50_000_000; deadline_s = None; breaker_k = 4; seed = 0 }

let verdict_name = function
  | Ok _ -> "ok"
  | Timed_out _ -> "timed_out"
  | Unit_crashed _ -> "crashed"
  | Worker_died _ -> "worker_died"
  | Quarantined _ -> "quarantined"

let verdict_detail = function
  | Ok _ -> ""
  | Timed_out reason -> reason
  | Unit_crashed f -> f.exn
  | Worker_died status -> status
  | Quarantined group -> group

(* Same splitmix-style mixer as [Chaos]: the backoff spin count must be
   seed-derived, never wall-clock-random, so reruns behave alike. *)
let mix a b c =
  let z = ref ((a * 0x9E3779B9) + (b * 0x85EBCA6B) + (c * 0xC2B2AE35) + 0x165667B1) in
  z := (!z lxor (!z lsr 15)) * 0x2C1B3C6D;
  z := (!z lxor (!z lsr 12)) * 0x297A2D39;
  (!z lxor (!z lsr 15)) land max_int

let backoff ~policy ~idx ~attempt =
  let spins = mix policy.seed idx attempt land 0x3FF in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let tally outs =
  Array.fold_left
    (fun c o ->
      let c = { c with c_retries = c.c_retries + max 0 (o.attempts - 1) } in
      match o.verdict with
      | Ok _ -> { c with c_ok = c.c_ok + 1 }
      | Timed_out _ -> { c with c_timed_out = c.c_timed_out + 1 }
      | Unit_crashed _ -> { c with c_crashed = c.c_crashed + 1 }
      | Worker_died _ -> { c with c_worker_died = c.c_worker_died + 1 }
      | Quarantined _ -> { c with c_quarantined = c.c_quarantined + 1 })
    {
      c_ok = 0;
      c_timed_out = 0;
      c_crashed = 0;
      c_worker_died = 0;
      c_quarantined = 0;
      c_retries = 0;
    }
    outs

(* Stable group membership: [members.(g)] lists unit indices of group
   [g] in input order, [posn.(i)] is [i]'s position within its group. *)
let grouping ~group units =
  let n = Array.length units in
  let group_name = Array.map group units in
  let gid = Hashtbl.create 8 in
  let rev_members = ref [] in
  let group_of =
    Array.map
      (fun name ->
        match Hashtbl.find_opt gid name with
        | Some g -> g
        | None ->
            let g = Hashtbl.length gid in
            Hashtbl.add gid name g;
            rev_members := ref [] :: !rev_members;
            g)
      group_name
  in
  let members_rev = Array.of_list (List.rev !rev_members) in
  let posn = Array.make n 0 in
  Array.iteri
    (fun i g ->
      let cell = members_rev.(g) in
      posn.(i) <- List.length !cell;
      cell := i :: !cell)
    group_of;
  let members = Array.map (fun cell -> Array.of_list (List.rev !cell)) members_rev in
  (group_name, group_of, posn, members)

(* Deterministic circuit breaker: walk each group in stable input
   order; after [breaker_k] consecutive fatalities (crashes or worker
   deaths), every later unit of the group is quarantined (an [Ok]
   computed there is discarded — deterministically, so fresh, resumed,
   in-process and multi-process runs all agree). *)
let breaker_postpass ~breaker_k ~group units outcomes =
  if breaker_k > 0 then begin
    let group_name, _, _, members = grouping ~group units in
    Array.iter
      (fun m ->
        let streak = ref 0 and tripped = ref false in
        Array.iter
          (fun idx ->
            if !tripped then
              outcomes.(idx) <-
                { outcomes.(idx) with verdict = Quarantined group_name.(idx) }
            else
              match outcomes.(idx).verdict with
              | Unit_crashed _ | Worker_died _ ->
                  incr streak;
                  if !streak >= breaker_k then tripped := true
              | Quarantined _ -> () (* advisory skip; only reachable post-trip *)
              | Ok _ | Timed_out _ -> streak := 0)
          m)
      members
  end

let run ?jobs ?(policy = default_policy) ?(chaos = fun _ -> None) ?precomputed ?record
    ~group f units =
  let n = Array.length units in
  let group_name, group_of, posn, members = grouping ~group units in
  (* Raw outcomes land in atomics: each slot is written by the domain
     that dealt the unit, but the advisory breaker reads other slots. *)
  let raw = Array.init n (fun _ -> Atomic.make None) in
  (match precomputed with
  | None -> ()
  | Some pre ->
      for i = 0 to n - 1 do
        match pre i with None -> () | Some o -> Atomic.set raw.(i) (Some o)
      done);
  let journal_mutex = Mutex.create () in
  (* Sound advisory skip: quarantine without running only when
     [breaker_k] *completed* fatalities sit at the immediately preceding
     group positions — evidence the deterministic post-pass must reach
     the same way, whatever the undecided earlier units turn out to be
     (they could only move the trip point earlier). *)
  let provably_tripped idx =
    policy.breaker_k > 0
    && posn.(idx) >= policy.breaker_k
    &&
    let m = members.(group_of.(idx)) in
    let rec streak q count =
      count >= policy.breaker_k
      || q >= 0
         &&
         match Atomic.get raw.(m.(q)) with
         | Some { verdict = Unit_crashed _; _ } | Some { verdict = Worker_died _; _ }
           ->
             streak (q - 1) (count + 1)
         | _ -> false
    in
    streak (posn.(idx) - 1) 0
  in
  let attempt idx u =
    Chaos.with_fault (chaos idx) @@ fun () ->
    Budget.with_budget ?fuel:policy.fuel ?deadline_s:policy.deadline_s @@ fun () ->
    f u
  in
  let run_unit idx =
    if Atomic.get raw.(idx) = None then
      if Interrupt.requested () then
        (* not-run, not a failure: the resumed run recomputes it (the
           quarantine verdict is never journaled) *)
        Atomic.set raw.(idx)
          (Some { verdict = Quarantined "interrupted"; attempts = 0 })
      else if provably_tripped idx then
        Atomic.set raw.(idx)
          (Some { verdict = Quarantined group_name.(idx); attempts = 0 })
      else begin
        let rec go a =
          match attempt idx units.(idx) with
          | v -> { verdict = Ok v; attempts = a }
          | exception Budget.Exhausted reason ->
              if a <= policy.retries then (backoff ~policy ~idx ~attempt:a; go (a + 1))
              else { verdict = Timed_out reason; attempts = a }
          | exception e ->
              let backtrace = Printexc.get_backtrace () in
              let failure = { exn = Printexc.to_string e; backtrace } in
              if a <= policy.retries then (backoff ~policy ~idx ~attempt:a; go (a + 1))
              else { verdict = Unit_crashed failure; attempts = a }
        in
        let o = go 1 in
        Atomic.set raw.(idx) (Some o);
        match record with
        | None -> ()
        | Some r -> Mutex.protect journal_mutex (fun () -> r idx o)
      end
  in
  ignore (Pool.mapi ?jobs (fun idx _ -> run_unit idx) (Array.to_list units) : unit list);
  let outcomes =
    Array.map (fun slot -> match Atomic.get slot with Some o -> o | None -> assert false) raw
  in
  breaker_postpass ~breaker_k:policy.breaker_k ~group units outcomes;
  outcomes
