let now_ns () = Monotonic_clock.now ()
let now () = Int64.to_float (now_ns ()) *. 1e-9
let elapsed t0 = now () -. t0
