(** Cooperative SIGINT/SIGTERM handling for long campaign runs.

    {!install} registers handlers that only set a process-wide flag;
    the supervisor ({!Supervise}) and the worker pool ({!Procpool})
    poll {!requested} at unit boundaries.  An interrupted run thus
    stops dealing new units, kills its workers, flushes its journal,
    and reports partial aggregates instead of dying mid-write. *)

val install : unit -> unit
(** Register the flag-setting handlers for SIGINT and SIGTERM.
    Idempotent; a no-op on platforms without those signals. *)

val requested : unit -> bool
(** Has an interrupt been requested (by signal or {!request})? *)

val request : unit -> unit
(** Set the flag programmatically (tests, nested coordinators). *)

val reset : unit -> unit
(** Clear the flag (tests). *)
