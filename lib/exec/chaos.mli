(** Chaos-injection harness for the campaign supervisor.

    Mirrors the [Jit.Fault] pattern from the mutation engine: an
    activation lives in a domain-local slot, [with_fault] arms it for
    the dynamic extent of one supervised attempt, and hook points
    inside the harness (solver entry, explorer entry) consult the slot.
    Where [Jit.Fault] injects {e compiler} defects to grade the
    oracles, this module injects {e harness} faults — a solver that
    raises, an exploration that never terminates, an allocation bomb —
    to grade the supervisor itself: every injected fault must be
    contained as a per-unit verdict with zero collateral damage.

    The process-level kinds extend the same discipline to the
    {!Procpool} worker tier: a worker that is SIGKILLed mid-unit,
    freezes under SIGSTOP, exits with a nonzero status, or smears
    garbage over its result pipe must be contained by the coordinator
    (heartbeat deadline, preemptive kill, re-deal, frame resync) with
    the faulted unit becoming a counted verdict, never a lost row.

    Hooks fire {e before} the shared memo caches ([Solver.Solve],
    [Concolic.Explorer]), so a warm cache can never mask an injected
    fault and a faulted attempt can never poison a cache. *)

type kind =
  | Solver_raise  (** the next solver query raises {!Injected} *)
  | Explorer_hang
      (** exploration spins forever (contained by the fuel watchdog) *)
  | Alloc_bomb
      (** exploration allocates unboundedly (contained by the fuel
          watchdog, which charges per chunk) *)
  | Worker_kill  (** the worker SIGKILLs itself mid-unit *)
  | Worker_stop
      (** the worker SIGSTOPs itself mid-unit (caught by the
          coordinator's heartbeat deadline) *)
  | Worker_exit  (** the worker exits 2 mid-unit *)
  | Pipe_garbage
      (** the worker writes garbage bytes onto its result pipe before
          the unit's frame (recovered by decoder resync, counted) *)

exception Injected of string
(** The fault raised by {!Solver_raise} — and by the non-terminating
    kinds when no watchdog budget is active, or by the process-level
    kinds outside a worker process, so an unsupervised misuse crashes
    loudly instead of hanging or killing the coordinator. *)

type plan = { seed : int; targets : (int * kind) list }
(** Seeded fault schedule: [targets] maps stable unit indices to fault
    kinds, sorted by index. *)

val plan : ?kinds:kind array -> seed:int -> faults:int -> units:int -> unit -> plan
(** Deterministically pick [min faults units] distinct unit indices
    (seed-derived, evenly scattered so no two targets are adjacent when
    the unit count allows — keeping injected crashes from tripping the
    circuit breaker) and assign kinds round-robin in declaration
    order.  [kinds] defaults to the in-process triple; pass
    {!process_kinds} for a procpool drill. *)

val kind_of : plan -> int -> kind option
(** The fault (if any) scheduled for unit index [i]. *)

val kind_name : kind -> string
(** ["solver-raise" | "explorer-hang" | "alloc-bomb" | "worker-kill" |
    "worker-stop" | "worker-exit" | "pipe-garbage"] — stable names for
    JSON and journals. *)

val process_kinds : kind array
(** The four process-level kinds, in round-robin order for {!plan}. *)

val with_fault : kind option -> (unit -> 'a) -> 'a
(** [with_fault k f] runs [f ()] with [k] armed in this domain's slot
    (saved and restored on exit, exceptions included).  [None] is the
    identity — the pristine path stays zero-cost. *)

val armed : unit -> kind option
(** The fault armed in the calling domain, if any. *)

val mark_worker : unit -> unit
(** Declare this process a procpool worker, unlocking the
    process-level kinds (called by the worker entry point). *)

val take_pending_garbage : unit -> string option
(** Consume the garbage bytes scheduled by a fired {!Pipe_garbage}
    fault; the worker loop writes them onto the result pipe just
    before the unit's real frame. *)

val hook_solver : unit -> unit
(** Hook point at solver-query entry: raises {!Injected} when
    {!Solver_raise} is armed. *)

val hook_explorer : unit -> unit
(** Hook point at exploration entry: spins (respectively allocates)
    until the watchdog raises [Budget.Exhausted] when {!Explorer_hang}
    (respectively {!Alloc_bomb}) is armed; fires the process-level
    kinds — self-SIGKILL, self-SIGSTOP, [exit 2], pending pipe
    garbage — when one of those is armed inside a worker. *)
