(** Monotonic wall clock.

    All harness timing (campaign phase walls, bench phases, watchdog
    deadlines) goes through this module rather than
    [Unix.gettimeofday], so measurements and deadlines survive NTP
    steps and daylight-saving jumps.  Backed by
    [CLOCK_MONOTONIC]/[mach_absolute_time] via the bechamel sublibrary
    already present in the tool-chain; no allocation on the hot path. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock.  Only differences are
    meaningful; the epoch is unspecified (typically boot time). *)

val now : unit -> float
(** {!now_ns} in seconds, as a float.  Only differences are
    meaningful. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0] — seconds since [t0] was sampled
    with {!now}. *)
