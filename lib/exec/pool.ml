(* Work pool: deal jobs from an atomic front index, write results into
   per-job slots, merge in input order.  Workers never block on each
   other; the only synchronisation points are the fetch-and-add on the
   deal index and the final [Domain.join] (which publishes the slot
   writes to the caller under the OCaml 5 memory model). *)

let default_jobs () = Domain.recommended_domain_count ()

type failure = { exn : exn; backtrace : Printexc.raw_backtrace }

let run_one f x =
  match f x with
  | v -> Ok v
  | exception exn -> Error { exn; backtrace = Printexc.get_raw_backtrace () }

let run_results ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = Array.length xs in
  if jobs <= 1 || n <= 1 then Array.map (run_one f) xs
  else begin
    let slots = Array.make n None in
    let next = Atomic.make 0 in
    let rec work () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        slots.(i) <- Some (run_one f xs.(i));
        work ()
      end
    in
    let helpers = Array.init (min jobs n - 1) (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join helpers;
    Array.map (function Some r -> r | None -> assert false) slots
  end

let mapi ?jobs f xs =
  let items = Array.of_list xs in
  let results =
    run_results ?jobs (fun i -> f i items.(i)) (Array.init (Array.length items) Fun.id)
  in
  (* Merge in input order; the first Error met is therefore the
     lowest-index failure, whatever the scheduling was. *)
  Array.to_list
    (Array.map
       (function
         | Ok v -> v
         | Error { exn; backtrace } -> Printexc.raise_with_backtrace exn backtrace)
       results)

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs
