(* Work pool: deal jobs from an atomic front index, write results into
   per-job slots, merge in input order.  Workers never block on each
   other; the only synchronisation points are the fetch-and-add on the
   deal index and the final [Domain.join] (which publishes the slot
   writes to the caller under the OCaml 5 memory model). *)

let default_jobs () = Domain.recommended_domain_count ()

let mapi ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.mapi f xs
  else begin
    let items = Array.of_list xs in
    let slots = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let rec work () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get failure = None then begin
        (match f i items.(i) with
        | v -> slots.(i) <- Some v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt))));
        work ()
      end
    in
    let helpers =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn work)
    in
    work ();
    Array.iter Domain.join helpers;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) slots)
  end

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs
