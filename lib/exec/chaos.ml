type kind = Solver_raise | Explorer_hang | Alloc_bomb

exception Injected of string

(* Stable rendering for verdict details and journals (the default
   printer would expose the internal module path). *)
let () =
  Printexc.register_printer (function
    | Injected msg -> Some ("chaos-injected: " ^ msg)
    | _ -> None)

type plan = { seed : int; targets : (int * kind) list }

let kind_name = function
  | Solver_raise -> "solver-raise"
  | Explorer_hang -> "explorer-hang"
  | Alloc_bomb -> "alloc-bomb"

let kinds = [| Solver_raise; Explorer_hang; Alloc_bomb |]

(* Small splitmix-style mixer: deterministic across runs and OCaml
   versions (unlike [Hashtbl.hash] we control every bit). *)
let mix seed i =
  let z = ref (seed * 0x9E3779B9 + i * 0x85EBCA6B + 0x165667B1) in
  z := (!z lxor (!z lsr 15)) * 0x2C1B3C6D;
  z := (!z lxor (!z lsr 12)) * 0x297A2D39;
  (!z lxor (!z lsr 15)) land max_int

let plan ~seed ~faults ~units =
  let faults = max 0 (min faults units) in
  let targets =
    if faults = 0 then []
    else begin
      (* Scatter: one target per equal-width stripe of the unit range,
         offset seed-derived within the stripe.  Distinct by
         construction, and non-adjacent whenever units >= 2*faults, so
         injected crashes never form a breaker-tripping streak. *)
      let stripe = units / faults in
      List.init faults (fun k ->
          let lo = k * stripe in
          let width = if k = faults - 1 then units - lo else stripe in
          let idx = lo + (mix seed k mod max 1 width) in
          (idx, kinds.(k mod Array.length kinds)))
    end
  in
  { seed; targets = List.sort compare targets }

let kind_of plan i =
  List.assoc_opt i plan.targets

(* Domain-local activation, saved/restored like [Jit.Fault]. *)
let slot : kind option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_fault k f =
  match k with
  | None -> f ()
  | Some _ ->
      let cell = Domain.DLS.get slot in
      let saved = !cell in
      cell := k;
      Fun.protect ~finally:(fun () -> cell := saved) f

let armed () = !(Domain.DLS.get slot)

(* The non-terminating kinds only make sense under a watchdog; without
   one they would hang the harness they are meant to exercise.  Raising
   keeps an unsupervised misuse loud and deterministic. *)
let require_budget what =
  if not (Budget.active ()) then
    raise (Injected (what ^ " injected without an active watchdog budget"))

let hook_solver () =
  match armed () with
  | Some Solver_raise -> raise (Injected "chaos: solver query raised")
  | _ -> ()

let hook_explorer () =
  match armed () with
  | Some Explorer_hang ->
      require_budget "explorer hang";
      while true do
        Budget.tick ~cost:4096 ()
      done
  | Some Alloc_bomb ->
      require_budget "alloc bomb";
      let hold = ref [] in
      while true do
        hold := Bytes.create 65536 :: !hold;
        Budget.tick ~cost:65536 ()
      done
  | _ -> ()
