type kind =
  | Solver_raise
  | Explorer_hang
  | Alloc_bomb
  | Worker_kill
  | Worker_stop
  | Worker_exit
  | Pipe_garbage

exception Injected of string

(* Stable rendering for verdict details and journals (the default
   printer would expose the internal module path). *)
let () =
  Printexc.register_printer (function
    | Injected msg -> Some ("chaos-injected: " ^ msg)
    | _ -> None)

type plan = { seed : int; targets : (int * kind) list }

let kind_name = function
  | Solver_raise -> "solver-raise"
  | Explorer_hang -> "explorer-hang"
  | Alloc_bomb -> "alloc-bomb"
  | Worker_kill -> "worker-kill"
  | Worker_stop -> "worker-stop"
  | Worker_exit -> "worker-exit"
  | Pipe_garbage -> "pipe-garbage"

let kinds = [| Solver_raise; Explorer_hang; Alloc_bomb |]

(* Process-level faults: only meaningful under the procpool — three of
   them take the whole worker process down, the fourth corrupts its
   result pipe.  Containment is the supervisor's job (heartbeat,
   preemptive SIGKILL, re-deal, frame resync), not the budget's. *)
let process_kinds = [| Worker_kill; Worker_stop; Worker_exit; Pipe_garbage |]

(* Small splitmix-style mixer: deterministic across runs and OCaml
   versions (unlike [Hashtbl.hash] we control every bit). *)
let mix seed i =
  let z = ref (seed * 0x9E3779B9 + i * 0x85EBCA6B + 0x165667B1) in
  z := (!z lxor (!z lsr 15)) * 0x2C1B3C6D;
  z := (!z lxor (!z lsr 12)) * 0x297A2D39;
  (!z lxor (!z lsr 15)) land max_int

let plan ?(kinds = kinds) ~seed ~faults ~units () =
  let faults = max 0 (min faults units) in
  let targets =
    if faults = 0 then []
    else begin
      (* Scatter: one target per equal-width stripe of the unit range,
         offset seed-derived within the stripe.  Distinct by
         construction, and non-adjacent whenever units >= 2*faults, so
         injected crashes never form a breaker-tripping streak. *)
      let stripe = units / faults in
      List.init faults (fun k ->
          let lo = k * stripe in
          let width = if k = faults - 1 then units - lo else stripe in
          let idx = lo + (mix seed k mod max 1 width) in
          (idx, kinds.(k mod Array.length kinds)))
    end
  in
  { seed; targets = List.sort compare targets }

let kind_of plan i =
  List.assoc_opt i plan.targets

(* Domain-local activation, saved/restored like [Jit.Fault]. *)
let slot : kind option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_fault k f =
  match k with
  | None -> f ()
  | Some _ ->
      let cell = Domain.DLS.get slot in
      let saved = !cell in
      cell := k;
      Fun.protect ~finally:(fun () -> cell := saved) f

let armed () = !(Domain.DLS.get slot)

(* The non-terminating kinds only make sense under a watchdog; without
   one they would hang the harness they are meant to exercise.  Raising
   keeps an unsupervised misuse loud and deterministic. *)
let require_budget what =
  if not (Budget.active ()) then
    raise (Injected (what ^ " injected without an active watchdog budget"))

(* The process-level kinds only make sense inside a procpool worker;
   firing one in the coordinator would kill the campaign the fault is
   meant to exercise.  Same loud-misuse discipline as [require_budget]. *)
let in_worker = ref false
let mark_worker () = in_worker := true

let require_worker what =
  if not !in_worker then
    raise (Injected (what ^ " injected outside a worker process"))

(* Garbage destined for the worker's result pipe.  The payload starts
   with the frame magic but is not a valid frame, and carries no
   newline, so it exercises both the invalid-line path and the decoder
   resync past garbage glued onto the next frame. *)
let pipe_garbage_bytes = "vmw1|ffffffff|deadbeef-not-a-frame\xfe\xff"
let pending_garbage = Atomic.make false

let take_pending_garbage () =
  if Atomic.exchange pending_garbage false then Some pipe_garbage_bytes else None

let hook_solver () =
  match armed () with
  | Some Solver_raise -> raise (Injected "chaos: solver query raised")
  | _ -> ()

let hook_explorer () =
  match armed () with
  | Some Explorer_hang ->
      require_budget "explorer hang";
      while true do
        Budget.tick ~cost:4096 ()
      done
  | Some Alloc_bomb ->
      require_budget "alloc bomb";
      let hold = ref [] in
      while true do
        hold := Bytes.create 65536 :: !hold;
        Budget.tick ~cost:65536 ()
      done
  | Some Worker_kill ->
      require_worker "worker kill";
      Unix.kill (Unix.getpid ()) Sys.sigkill
  | Some Worker_stop ->
      require_worker "worker stop";
      (* stops the process mid-unit; the coordinator's heartbeat
         deadline must notice the silence and SIGKILL us *)
      Unix.kill (Unix.getpid ()) Sys.sigstop
  | Some Worker_exit ->
      require_worker "worker exit";
      exit 2
  | Some Pipe_garbage ->
      require_worker "pipe garbage";
      Atomic.set pending_garbage true
  | _ -> ()
