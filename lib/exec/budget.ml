exception Exhausted of string

type t = {
  mutable fuel : int;  (* remaining; min_int = unlimited *)
  deadline : float;  (* absolute monotonic seconds; infinity = none *)
  mutable until_clock : int;  (* charged units until next clock poll *)
}

(* One cell per domain; [with_budget] swaps the contents in and out so
   nested scopes restore their parent (same shape as [Jit.Fault]). *)
let slot : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let clock_poll_every = 16384

let with_budget ?fuel ?deadline_s f =
  let cell = Domain.DLS.get slot in
  let saved = !cell in
  let deadline =
    match deadline_s with
    | None -> infinity
    | Some s -> Clock.now () +. s
  in
  cell :=
    Some
      {
        fuel = (match fuel with None -> min_int | Some n -> max 0 n);
        deadline;
        until_clock = clock_poll_every;
      };
  Fun.protect ~finally:(fun () -> cell := saved) f

let tick ?(cost = 1) () =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some b ->
      if b.fuel <> min_int then begin
        b.fuel <- b.fuel - cost;
        if b.fuel < 0 then raise (Exhausted "fuel")
      end;
      if b.deadline < infinity then begin
        b.until_clock <- b.until_clock - cost;
        if b.until_clock <= 0 then begin
          b.until_clock <- clock_poll_every;
          if Clock.now () > b.deadline then raise (Exhausted "deadline")
        end
      end

let active () =
  match !(Domain.DLS.get slot) with
  | None -> false
  | Some b -> b.fuel <> min_int || b.deadline < infinity
