(** Fixed-width work pool over OCaml 5 [Domain]s.

    Jobs are dealt from a shared atomic index (a one-ended deque: every
    worker pops from the front), results land in a slot array keyed by
    the job's position in the input, and the merge replays that stable
    order — so the output of {!map} is [List.map f xs] exactly,
    independent of worker count, scheduling, or which domain ran which
    job.  That order-independence is what lets campaign tables and JSON
    reports be byte-identical at any [-j]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default. *)

type failure = {
  exn : exn;  (** the exception the job raised *)
  backtrace : Printexc.raw_backtrace;
}

val run_results :
  ?jobs:int -> ('a -> 'b) -> 'a array -> ('b, failure) result array
(** [run_results ~jobs f xs] runs every [f xs.(i)] to completion on up
    to [jobs] domains (the calling domain works too) and returns each
    job's own outcome in input order: [Ok v], or [Error] capturing the
    exception that job raised.  One crashing job costs exactly its own
    slot — every other result is preserved.  [jobs <= 1], or fewer than
    two jobs, runs sequentially in the caller with no domain spawned.
    [f] must be safe to call from multiple domains concurrently on
    distinct elements. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed via {!run_results}.
    If any job raises, the failure at the {e lowest} input index is
    re-raised in the caller (with its backtrace) after all jobs drain —
    deterministic at any [-j], unlike the pre-supervisor pool which
    re-raised whichever failure won a race and discarded every
    completed result. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} with the element's stable index. *)
