(** Fixed-width work pool over OCaml 5 [Domain]s.

    Jobs are dealt from a shared atomic index (a one-ended deque: every
    worker pops from the front), results land in a slot array keyed by
    the job's position in the input list, and the merge replays that
    stable order — so the output of {!map} is [List.map f xs] exactly,
    independent of worker count, scheduling, or which domain ran which
    job.  That order-independence is what lets campaign tables and JSON
    reports be byte-identical at any [-j]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs], computed by up to [jobs]
    domains (the calling domain works too).  [jobs <= 1], or a list
    with fewer than two elements, runs sequentially in the caller with
    no domain spawned.  [f] must be safe to call from multiple domains
    concurrently on distinct elements.  If any [f x] raises, the first
    exception observed is re-raised in the caller after all workers
    drain (remaining undealt jobs are abandoned). *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} with the element's stable index. *)
