(* Each shard is a stdlib Hashtbl behind its own mutex; entries are
   [Computing] while the owning caller runs the thunk outside the lock,
   and a per-shard condition wakes waiters when the value (or a
   failure) lands.  Counters are process-global atomics, not per-shard,
   so [stats] needs no locking. *)

type 'v entry = Computing | Done of 'v

type ('k, 'v) shard = {
  table : ('k, 'v entry) Hashtbl.t;
  lock : Mutex.t;
  landed : Condition.t;
}

type ('k, 'v) t = {
  shards : ('k, 'v) shard array;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(shards = 16) () =
  let n = pow2_at_least (max 1 shards) 1 in
  {
    shards =
      Array.init n (fun _ ->
          {
            table = Hashtbl.create 64;
            lock = Mutex.create ();
            landed = Condition.create ();
          });
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let shard_for t k = t.shards.(Hashtbl.hash k land (Array.length t.shards - 1))

let find_or_add t k compute =
  let s = shard_for t k in
  Mutex.lock s.lock;
  let rec claim () =
    match Hashtbl.find_opt s.table k with
    | Some (Done v) ->
        Mutex.unlock s.lock;
        Atomic.incr t.hits;
        v
    | Some Computing ->
        Condition.wait s.landed s.lock;
        claim ()
    | None ->
        Hashtbl.replace s.table k Computing;
        Mutex.unlock s.lock;
        Atomic.incr t.misses;
        (match compute k with
        | v ->
            Mutex.lock s.lock;
            Hashtbl.replace s.table k (Done v);
            Condition.broadcast s.landed;
            Mutex.unlock s.lock;
            v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock s.lock;
            Hashtbl.remove s.table k;
            Condition.broadcast s.landed;
            Mutex.unlock s.lock;
            Printexc.raise_with_backtrace e bt)
  in
  claim ()

let find_opt t k =
  let s = shard_for t k in
  Mutex.lock s.lock;
  let r =
    match Hashtbl.find_opt s.table k with
    | Some (Done v) -> Some v
    | Some Computing | None -> None
  in
  Mutex.unlock s.lock;
  r

type stats = { hits : int; misses : int }

let stats (t : ('k, 'v) t) =
  { hits = Atomic.get t.hits; misses = Atomic.get t.misses }

let length t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n =
        Hashtbl.fold
          (fun _ e acc -> match e with Done _ -> acc + 1 | Computing -> acc)
          s.table 0
      in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      (* keep in-flight markers so their owners can still land *)
      let doomed =
        Hashtbl.fold
          (fun k e acc -> match e with Done _ -> k :: acc | Computing -> acc)
          s.table []
      in
      List.iter (Hashtbl.remove s.table) doomed;
      Mutex.unlock s.lock)
    t.shards;
  Atomic.set t.hits 0;
  Atomic.set t.misses 0
