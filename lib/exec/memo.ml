(* Each shard is a stdlib Hashtbl behind its own mutex; entries are
   [Computing] while the owning caller runs the thunk outside the lock,
   and a per-shard condition wakes waiters when the value (or a
   failure) lands.  Counters live *inside* the shards, bumped under the
   shard lock the caller already holds — no cache line is shared across
   shards on the hot path, so counting costs nothing extra under [-j];
   [stats] pays the aggregation instead, once, at read time. *)

type 'v entry = Computing | Done of 'v

type ('k, 'v) shard = {
  table : ('k, 'v entry) Hashtbl.t;
  lock : Mutex.t;
  landed : Condition.t;
  mutable hits : int;
  mutable misses : int;
}

type ('k, 'v) t = { shards : ('k, 'v) shard array }

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

(* Enough shards that domains rarely collide even when every one of
   them hammers the same memo: 4 slots per recommended domain, floor of
   16 so single-core machines still spread hash buckets. *)
let default_shards () = max 16 (4 * Domain.recommended_domain_count ())

let create ?shards () =
  let requested =
    match shards with Some n -> n | None -> default_shards ()
  in
  let n = pow2_at_least (max 1 requested) 1 in
  {
    shards =
      Array.init n (fun _ ->
          {
            table = Hashtbl.create 64;
            lock = Mutex.create ();
            landed = Condition.create ();
            hits = 0;
            misses = 0;
          });
  }

let shard_for t k = t.shards.(Hashtbl.hash k land (Array.length t.shards - 1))

let find_or_add t k compute =
  let s = shard_for t k in
  Mutex.lock s.lock;
  let rec claim () =
    match Hashtbl.find_opt s.table k with
    | Some (Done v) ->
        s.hits <- s.hits + 1;
        Mutex.unlock s.lock;
        v
    | Some Computing ->
        Condition.wait s.landed s.lock;
        claim ()
    | None ->
        Hashtbl.replace s.table k Computing;
        s.misses <- s.misses + 1;
        Mutex.unlock s.lock;
        (match compute k with
        | v ->
            Mutex.lock s.lock;
            Hashtbl.replace s.table k (Done v);
            Condition.broadcast s.landed;
            Mutex.unlock s.lock;
            v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock s.lock;
            Hashtbl.remove s.table k;
            Condition.broadcast s.landed;
            Mutex.unlock s.lock;
            Printexc.raise_with_backtrace e bt)
  in
  claim ()

let find_opt t k =
  let s = shard_for t k in
  Mutex.lock s.lock;
  let r =
    match Hashtbl.find_opt s.table k with
    | Some (Done v) -> Some v
    | Some Computing | None -> None
  in
  Mutex.unlock s.lock;
  r

type stats = { hits : int; misses : int }

let stats (t : ('k, 'v) t) =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let r = { hits = acc.hits + s.hits; misses = acc.misses + s.misses } in
      Mutex.unlock s.lock;
      r)
    { hits = 0; misses = 0 }
    t.shards

let length t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n =
        Hashtbl.fold
          (fun _ e acc -> match e with Done _ -> acc + 1 | Computing -> acc)
          s.table 0
      in
      Mutex.unlock s.lock;
      acc + n)
    0 t.shards

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      (* keep in-flight markers so their owners can still land *)
      let doomed =
        Hashtbl.fold
          (fun k e acc -> match e with Done _ -> k :: acc | Computing -> acc)
          s.table []
      in
      List.iter (Hashtbl.remove s.table) doomed;
      s.hits <- 0;
      s.misses <- 0;
      Mutex.unlock s.lock)
    t.shards
