(* Multi-process worker pool: crash-only execution for campaign units.

   The coordinator fork/execs N copies of the running binary (re-entering
   a hidden "worker" argv mode), deals one {!Unit_wire.t} at a time to
   each worker over a pipe pair, and collects {!Unit_wire.msg} result
   frames.  One unit in flight per worker bounds the blast radius of a
   death to exactly that unit.

   Supervision is preemptive where the in-process {!Budget} is only
   cooperative:

   - a worker silent past [deadline_s] since its last frame (the Ack it
     sends at unit start is the heartbeat) is SIGKILLed — this catches
     SIGSTOP freezes, native-code spins, and anything else a
     cooperative watchdog cannot see;
   - any worker death (signal, nonzero exit, preemptive kill) costs one
     attempt of its in-flight unit, which is re-dealt while attempts
     remain and becomes a [P_died] outcome after that;
   - per-slot circuit breaker: [breaker_k] consecutive deaths without a
     completed unit retire the slot (no respawn), so a poisoned
     environment cannot fork-bomb;
   - torn/garbage frames on a result pipe are counted incidents the
     {!Unit_wire.decoder} resyncs past, never crashes.

   Determinism: outcomes are keyed by stable unit position, so the
   caller's merge is byte-identical at any worker count; the stats
   fields exposed to reports (deaths, preempted, redeals, garbage) are
   functions of the unit list and the fault plan, not of scheduling. *)

type outcome =
  | P_result of Unit_wire.verdict * int (* worker-reported verdict, attempts *)
  | P_died of { status : string; attempts : int }
  | P_not_run

type stats = {
  p_workers : int;
  p_spawned : int;
  p_deaths : int;
  p_preempted : int;
  p_redeals : int;
  p_garbage : int;
  p_retired : int;
}

(* --- wait-status rendering (stable strings for verdicts and JSON) --- *)

let signal_name s =
  if s = Sys.sigkill then "sigkill"
  else if s = Sys.sigstop then "sigstop"
  else if s = Sys.sigterm then "sigterm"
  else if s = Sys.sigint then "sigint"
  else if s = Sys.sigsegv then "sigsegv"
  else if s = Sys.sigabrt then "sigabrt"
  else if s = Sys.sigbus then "sigbus"
  else Printf.sprintf "sig%d" s

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> "signal " ^ signal_name s
  | Unix.WSTOPPED s -> "stopped " ^ signal_name s

(* --- low-level pipe IO --- *)

let rec write_all fd s off len =
  if len > 0 then begin
    let k = Unix.write_substring fd s off len in
    write_all fd s (off + k) (len - k)
  end

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

(* --- coordinator --- *)

type slot = {
  mutable pid : int;
  mutable to_worker : Unix.file_descr;
  mutable from_worker : Unix.file_descr;
  mutable dec : Unit_wire.decoder;
  mutable garbage_seen : int;
  mutable current : int option; (* position in [units] in flight *)
  mutable last_beat : float; (* monotonic time of last frame / deal *)
  mutable alive : bool;
  mutable bye_sent : bool;
  mutable preempted : bool; (* we SIGKILLed past the deadline *)
  mutable streak : int; (* consecutive deaths without a completed unit *)
  mutable retired : bool;
}

let run ~workers ?(deadline_s = 30.0) ?(retries = 1) ?(breaker_k = 4)
    ?(worker_argv = [| "worker" |]) ~hello ?(on_final = fun _ _ -> ())
    (units : Unit_wire.t array) : outcome array * stats =
  let n = Array.length units in
  let workers = max 1 (min workers (max 1 n)) in
  let outcomes = Array.make n P_not_run in
  let attempts = Array.make n 0 in
  let pending = Queue.create () in
  let redeal = Stack.create () in
  Array.iteri (fun i _ -> Queue.add i pending) units;
  let finalized = ref 0 in
  let spawned = ref 0
  and deaths = ref 0
  and preempted = ref 0
  and redeals = ref 0
  and garbage = ref 0
  and retired_n = ref 0 in
  let exe = Sys.executable_name in
  let argv = Array.append [| exe |] worker_argv in
  let hello_frame = Unit_wire.encode (Unit_wire.Hello hello) in
  let finalize pos o =
    outcomes.(pos) <- o;
    incr finalized;
    on_final pos o
  in
  let spawn (s : slot) =
    (* cloexec on every end: a worker must not inherit a sibling's pipe
       ends, or a sibling's death would never read as EOF.  The child's
       own ends survive exec because [create_process] dup2s them onto
       0/1, which clears close-on-exec on the copies. *)
    let uin_r, uin_w = Unix.pipe ~cloexec:true () in
    let uout_r, uout_w = Unix.pipe ~cloexec:true () in
    let pid = Unix.create_process exe argv uin_r uout_w Unix.stderr in
    Unix.close uin_r;
    Unix.close uout_w;
    s.pid <- pid;
    s.to_worker <- uin_w;
    s.from_worker <- uout_r;
    s.dec <- Unit_wire.decoder ();
    s.garbage_seen <- 0;
    s.current <- None;
    s.last_beat <- Unix.gettimeofday ();
    s.alive <- true;
    s.bye_sent <- false;
    s.preempted <- false;
    incr spawned;
    (* a dead-on-arrival worker reads as EOF on its first select *)
    try write_all s.to_worker hello_frame 0 (String.length hello_frame)
    with Unix.Unix_error _ -> ()
  in
  let take_work () =
    match Stack.pop_opt redeal with
    | Some pos -> Some pos
    | None -> Queue.take_opt pending
  in
  let work_waiting () = (not (Stack.is_empty redeal)) || not (Queue.is_empty pending) in
  let deal (s : slot) =
    match take_work () with
    | None ->
        if not s.bye_sent then begin
          s.bye_sent <- true;
          let f = Unit_wire.encode Unit_wire.Bye in
          try write_all s.to_worker f 0 (String.length f)
          with Unix.Unix_error _ -> ()
        end
    | Some pos ->
        attempts.(pos) <- attempts.(pos) + 1;
        let u = { units.(pos) with Unit_wire.w_attempt = attempts.(pos) } in
        s.current <- Some pos;
        s.last_beat <- Unix.gettimeofday ();
        let f = Unit_wire.encode (Unit_wire.Unit u) in
        (* EPIPE here means the worker just died; the EOF path re-deals *)
        (try write_all s.to_worker f 0 (String.length f)
         with Unix.Unix_error _ -> ())
  in
  let drain_msgs (s : slot) =
    let rec go () =
      match Unit_wire.next s.dec with
      | None -> ()
      | Some m ->
          (match m with
          | Unit_wire.Ack _ -> s.last_beat <- Unix.gettimeofday ()
          | Unit_wire.Result { index; attempts = wa; verdict; _ } -> (
              s.last_beat <- Unix.gettimeofday ();
              match s.current with
              | Some pos when units.(pos).Unit_wire.w_index = index ->
                  s.current <- None;
                  s.streak <- 0;
                  finalize pos (P_result (verdict, wa))
              | _ -> incr garbage (* stray result frame *))
          | Unit_wire.Hello _ | Unit_wire.Unit _ | Unit_wire.Bye ->
              incr garbage (* protocol violation from the worker *));
          go ()
    in
    go ();
    let g = Unit_wire.garbage s.dec in
    garbage := !garbage + (g - s.garbage_seen);
    s.garbage_seen <- g
  in
  (* teardown kills (normal completion, interrupt, exception unwind)
     are expected: counting them as deaths would make [p_deaths] depend
     on which workers happened to still be draining when the last
     result landed *)
  let shutdown = ref false in
  let reap (s : slot) =
    Unit_wire.eof s.dec;
    drain_msgs s;
    (try Unix.close s.to_worker with Unix.Unix_error _ -> ());
    (try Unix.close s.from_worker with Unix.Unix_error _ -> ());
    let _, status = waitpid_retry s.pid in
    s.alive <- false;
    let expected = !shutdown || (s.bye_sent && s.current = None) in
    if !shutdown then s.current <- None (* unfinished unit stays P_not_run *);
    if not expected then begin
      incr deaths;
      let status_str =
        (if s.preempted then "deadline " else "") ^ status_string status
      in
      (match s.current with
      | Some pos ->
          s.current <- None;
          if attempts.(pos) <= retries then begin
            Stack.push pos redeal;
            incr redeals
          end
          else finalize pos (P_died { status = status_str; attempts = attempts.(pos) })
      | None -> ());
      s.streak <- s.streak + 1;
      if breaker_k > 0 && s.streak >= breaker_k && not s.retired then begin
        s.retired <- true;
        incr retired_n
      end
    end
  in
  let kill_slot (s : slot) =
    if s.alive then begin
      (try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap s
    end
  in
  let slots =
    Array.init workers (fun _ ->
        {
          pid = -1;
          to_worker = Unix.stdin;
          from_worker = Unix.stdin;
          dec = Unit_wire.decoder ();
          garbage_seen = 0;
          current = None;
          last_beat = 0.0;
          alive = false;
          bye_sent = false;
          preempted = false;
          streak = 0;
          retired = false;
        })
  in
  (* writes to a dead worker's pipe must surface as EPIPE, not kill us *)
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  let buf = Bytes.create 65536 in
  Fun.protect
    ~finally:(fun () ->
      shutdown := true;
      Array.iter kill_slot slots;
      match old_sigpipe with
      | Some b -> ( try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
      | None -> ())
    (fun () ->
      Array.iter spawn slots;
      let progressing () =
        !finalized < n
        && (Array.exists (fun s -> s.alive) slots
           || (* every slot just died at once, but work remains and at
                 least one slot may be respawned — keep going so the
                 loop body's respawn pass can pick the work back up *)
           (work_waiting () && Array.exists (fun s -> not s.retired) slots))
      in
      while progressing () && not (Interrupt.requested ()) do
        (* respawn retired-free dead slots while work waits *)
        Array.iter
          (fun s ->
            if (not s.alive) && (not s.retired) && work_waiting () then spawn s)
          slots;
        (* deal to idle workers (stable order: lowest slot first); a
           slot that was already sent Bye is exiting and must not be
           handed late redeals it will never run *)
        Array.iter
          (fun s -> if s.alive && (not s.bye_sent) && s.current = None then deal s)
          slots;
        let now = Unix.gettimeofday () in
        let timeout =
          Array.fold_left
            (fun acc s ->
              if s.alive && s.current <> None then
                min acc (max 0.01 (s.last_beat +. deadline_s -. now))
              else acc)
            0.5 slots
        in
        let rds =
          Array.to_list slots
          |> List.filter (fun s -> s.alive)
          |> List.map (fun s -> s.from_worker)
        in
        let readable =
          match Unix.select rds [] [] timeout with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            match Array.find_opt (fun s -> s.alive && s.from_worker = fd) slots with
            | None -> ()
            | Some s -> (
                match Unix.read s.from_worker buf 0 (Bytes.length buf) with
                | 0 -> reap s
                | k ->
                    Unit_wire.feed s.dec (Bytes.sub_string buf 0 k);
                    drain_msgs s
                | exception Unix.Unix_error ((Unix.EBADF | Unix.EPIPE | Unix.ECONNRESET), _, _)
                  ->
                    reap s))
          readable;
        (* preemptive wall-clock deadline: a silent busy worker is dead
           to us — SIGKILL it (works on SIGSTOPped processes too) and
           let the EOF path account for the death *)
        let now = Unix.gettimeofday () in
        Array.iter
          (fun s ->
            if
              s.alive && s.current <> None && (not s.preempted)
              && now -. s.last_beat > deadline_s
            then begin
              s.preempted <- true;
              incr preempted;
              try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ()
            end)
          slots
      done;
      (* done, interrupted or fully retired: kill the stragglers;
         anything unfinished stays P_not_run *)
      shutdown := true;
      Array.iter kill_slot slots);
  ( outcomes,
    {
      p_workers = workers;
      p_spawned = !spawned;
      p_deaths = !deaths;
      p_preempted = !preempted;
      p_redeals = !redeals;
      p_garbage = !garbage;
      p_retired = !retired_n;
    } )

(* --- worker side --- *)

let worker_main (make : string -> Unit_wire.t -> Unit_wire.verdict * int) : unit =
  Chaos.mark_worker ();
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let proto_in = Unix.dup Unix.stdin in
  let proto_out = Unix.dup Unix.stdout in
  (* point fd 1 (and with it OCaml's stdout channel) at /dev/null so a
     stray print inside unit code cannot corrupt the frame stream — the
     decoder's resync is the backstop, not the plan *)
  (try
     let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
     Unix.dup2 devnull Unix.stdout;
     Unix.close devnull
   with Unix.Unix_error _ -> ());
  let dec = Unit_wire.decoder () in
  let buf = Bytes.create 65536 in
  let send_raw s =
    try write_all proto_out s 0 (String.length s)
    with Unix.Unix_error _ -> exit 0 (* coordinator is gone *)
  in
  let send m = send_raw (Unit_wire.encode m) in
  let rec recv () =
    match Unit_wire.next dec with
    | Some m -> Some m
    | None -> (
        match Unix.read proto_in buf 0 (Bytes.length buf) with
        | 0 -> None
        | k ->
            Unit_wire.feed dec (Bytes.sub_string buf 0 k);
            recv ()
        | exception Unix.Unix_error _ -> None)
  in
  let handler =
    match recv () with
    | Some (Unit_wire.Hello config) -> make config
    | _ -> exit 3 (* protocol error: no Hello *)
  in
  let rec loop () =
    match recv () with
    | None | Some Unit_wire.Bye -> exit 0
    | Some (Unit_wire.Unit u) ->
        (* the Ack doubles as the heartbeat: it restarts the
           coordinator's wall-clock deadline for this unit *)
        send (Unit_wire.Ack { index = u.Unit_wire.w_index; attempt = u.Unit_wire.w_attempt });
        let verdict, attempts = handler u in
        (match Chaos.take_pending_garbage () with
        | Some g -> send_raw g
        | None -> ());
        send
          (Unit_wire.Result
             { index = u.Unit_wire.w_index; attempt = u.Unit_wire.w_attempt; attempts; verdict });
        loop ()
    | Some _ -> loop () (* stray frame: ignore *)
  in
  loop ()
