(** On-disk content-addressed cache: the persistent counterpart of
    {!Memo}.

    Entries live one-per-file in a two-level sharded directory, named by
    the md5 of [namespace ^ "\x00" ^ key].  Each file records the full
    namespace, key, payload length and payload checksum in a header
    line, so a read returns the payload only when every one of those
    matches — a torn write, truncation, bit flip, foreign file or hash
    collision is a miss, never a crash and never a wrong answer.

    The namespace names the cached layer {e and its schema version}
    (e.g. ["solver-verdict:1"]); bump the version whenever the
    marshalled type changes.  The key must fingerprint everything the
    value depends on — for layers whose values depend on compiled code
    that includes {!Jit.Fault.cache_tag}, so mutant runs never poison
    pristine entries. *)

type t

type stats = {
  hits : int;  (** reads that returned a valid entry *)
  misses : int;  (** reads that found nothing usable *)
  loads : int;  (** reads that found a file and parsed it *)
  writes : int;  (** entries persisted *)
}

val open_store : dir:string -> t
(** Open (lazily create) a store rooted at [dir].  Cheap: no I/O until
    the first read or write. *)

val dir : t -> string
val stats : t -> stats
val reset_stats : t -> unit

val find : t -> ns:string -> key:string -> string option
(** Raw payload lookup.  [None] on any anomaly (missing, torn,
    corrupted, or recorded for a different namespace/key). *)

val add : t -> ns:string -> key:string -> string -> unit
(** Persist a payload via temp-file + rename.  I/O failures (full or
    read-only disk) drop the write silently — the store is a cache. *)

val entry_path : t -> ns:string -> key:string -> string
(** Where [find]/[add] address this entry — exposed for tests that
    corrupt or cross-wire entries on purpose. *)

(** {2 Process-global activation}

    The memo layers consult one process-wide store so `--store DIR` /
    [VMTEST_STORE] can switch persistence on without threading a handle
    through every layer.  When no store is active, [lookup]/[record]
    are no-ops and [counters] is all zeros. *)

val activate : string -> unit
val deactivate : unit -> unit
val active : unit -> t option
val enabled : unit -> bool

val activate_opt : string option -> unit
(** [activate_opt (Some dir)] activates [dir]; [activate_opt None]
    falls back to the [VMTEST_STORE] environment variable, else leaves
    the store inactive. *)

val counters : unit -> stats
val reset_counters : unit -> unit

val lookup : ns:string -> key:string -> 'a option
(** Unmarshal an entry from the active store.  Only sound for keys
    whose namespace always marshals the same type — the checksum
    guarantees the bytes, the namespace version must guarantee the
    schema. *)

val record : ns:string -> key:string -> 'a -> unit
