(** Serializable wire protocol between the campaign coordinator and its
    worker processes ({!Procpool}).

    Every message is one self-delimiting text line:
    [vmw1|<len:8 hex>|<md5 hex>|<hex-armoured Marshal payload>\n] —
    length-prefixed and checksummed like the journal, so torn frames
    and injected garbage are counted incidents the decoder recovers
    from, never crashes, and [Marshal] only ever sees bytes whose
    checksum verified. *)

type t = {
  w_index : int;  (** stable global unit index — the merge key *)
  w_attempt : int;  (** supervisor-side deal count, 1-based *)
  w_key : string;  (** journal unit key, for logs and sanity checks *)
  w_payload : string;  (** marshalled task-specific unit description *)
}

type verdict =
  | W_ok of string  (** marshalled task-specific result *)
  | W_timed_out of string  (** budget exhaustion reason *)
  | W_crashed of { exn : string; backtrace : string }

type msg =
  | Hello of string  (** coordinator → worker: marshalled run config *)
  | Unit of t  (** coordinator → worker: one unit to execute *)
  | Ack of { index : int; attempt : int }
      (** worker → coordinator: heartbeat at unit start *)
  | Result of { index : int; attempt : int; attempts : int; verdict : verdict }
      (** worker → coordinator: unit finished *)
  | Bye  (** coordinator → worker: drain and exit 0 *)

val encode : msg -> string
(** One complete frame, trailing newline included. *)

val decode_line : string -> msg option
(** Decode one line (newline excluded).  Any malformation — wrong
    magic, bad length, checksum mismatch, unmarshallable payload — is
    [None], never an exception. *)

(** Incremental decoder over an arbitrary byte stream. *)
type decoder

val decoder : unit -> decoder

val feed : decoder -> string -> unit
(** Append received bytes; complete lines are decoded eagerly.  An
    invalid line counts one garbage incident and is scanned for an
    embedded magic so a frame glued behind newline-less garbage is
    still recovered. *)

val next : decoder -> msg option
(** Dequeue the next decoded message, if any. *)

val garbage : decoder -> int
(** Invalid lines / torn frames recovered past so far. *)

val pending : decoder -> int
(** Bytes buffered without a terminating newline. *)

val eof : decoder -> unit
(** Flush the newline-less tail (a complete frame missing only its
    newline decodes; anything else counts as one torn frame). *)
