(* The concolic exploration engine (§2.3).

   For one VM instruction (byte-code or native method), repeatedly:
   1. solve the seed path-condition prefix to get concrete inputs,
   2. materialise a fresh object memory and frame,
   3. execute the instruction on the shadow machine, collecting the path
      condition as it held and the exit condition,
   4. record the path, then negate every not-already-negated clause to
      seed further explorations (generational search).

   Unlike classic concolic testing, exploration does *not* stop at
   erroneous exits — invalid-frame and invalid-memory paths are recorded
   like any other (they are the tester's cue to materialise deeper stacks
   and bigger objects). *)

module Sym = Symbolic.Sym_expr
module PC = Symbolic.Path_condition

type result = {
  subject : Path.subject;
  paths : Path.t list;
  iterations : int; (* concolic executions performed *)
  skipped_negations : int; (* negated prefixes the solver could not crack *)
  unsat_negations : int; (* negated prefixes proven infeasible *)
  unsupported : bool; (* instruction not supported by the tester (§4.3) *)
}

(* Method shape for the instruction under test. *)
let required_temps (op : Bytecodes.Opcode.t) =
  match op with
  | Push_temp n | Push_temp_ext n | Store_and_pop_temp n | Store_temp_ext n ->
      n + 1
  | _ -> 0

let default_literal_count = 16

let method_in_for subject (om : Vm_objects.Object_memory.t) :
    Bytecodes.Compiled_method.t =
  let heap = Vm_objects.Object_memory.heap om in
  let literals =
    List.init default_literal_count (fun i ->
        (Vm_objects.Value.of_small_int (101 + i) :> Vm_objects.Value.t))
  in
  match subject with
  | Path.Bytecode op ->
      Bytecodes.Method_builder.build heap ~args:0 ~temps:(required_temps op)
        ~literals [ op ]
  | Path.Bytecode_seq ops ->
      let temps =
        List.fold_left (fun acc op -> max acc (required_temps op)) 0 ops
      in
      Bytecodes.Method_builder.build heap ~args:0 ~temps ~literals ops
  | Path.Native id ->
      let arity = Interpreter.Primitive_table.arity id in
      (* Native methods are hybrid (§4.2): native behaviour plus a
         byte-code fallback body. *)
      Bytecodes.Method_builder.build heap ~args:arity ~literals ~native:id
        [ Bytecodes.Opcode.Push_nil; Bytecodes.Opcode.Return_top ]

let temp_count subject =
  match subject with
  | Path.Bytecode op -> required_temps op
  | Path.Bytecode_seq ops ->
      List.fold_left (fun acc op -> max acc (required_temps op)) 0 ops
  | Path.Native id -> Interpreter.Primitive_table.arity id

(* One concolic execution: returns the exit condition; the shadow machine
   accumulates the path condition and outputs. *)
let execute_once ?(lookahead = false) ~defects subject
    (shadow : Shadow_machine.t) : Interpreter.Exit_condition.t =
  match subject with
  | Path.Bytecode_seq _ -> (
      (* run the whole sequence: Success when the pc runs past the last
         instruction; any other exit ends the path where it happened *)
      let meth = Shadow_machine.M.compiled_method shadow in
      let size = Bytecodes.Compiled_method.bytecode_size meth in
      let rec go fuel =
        if fuel <= 0 then
          raise (Interpreter.Machine_intf.Unsupported_feature "sequence fuel")
        else if Shadow_machine.M.pc shadow >= size then
          Interpreter.Exit_condition.Success
        else
          match
            Shadow_machine.note_return shadow
              (Shadow_machine.Interpreter_shadow.step ~lookahead shadow)
          with
          | Shadow_machine.Interpreter_shadow.Continue -> go (fuel - 1)
          | Shadow_machine.Interpreter_shadow.Exit_send { selector; num_args }
            ->
              Interpreter.Exit_condition.Message_send { selector; num_args }
          | Shadow_machine.Interpreter_shadow.Exit_return _ ->
              Interpreter.Exit_condition.Method_return
      in
      match go 64 with
      | e -> e
      | exception Interpreter.Machine_intf.Invalid_frame_access ->
          Invalid_frame
      | exception Interpreter.Machine_intf.Invalid_memory_trap ->
          Invalid_memory_access
      | exception Bytecodes.Encoding.Invalid_bytecode _ ->
          (* a jump escaped the sequence: running off the method *)
          Invalid_memory_access)
  | Path.Bytecode _ -> (
      match
        Shadow_machine.note_return shadow
          (Shadow_machine.Interpreter_shadow.step shadow)
      with
      | Shadow_machine.Interpreter_shadow.Continue -> Success
      | Shadow_machine.Interpreter_shadow.Exit_send { selector; num_args } ->
          Message_send { selector; num_args }
      | Shadow_machine.Interpreter_shadow.Exit_return _ -> Method_return
      | exception Interpreter.Machine_intf.Invalid_frame_access ->
          Invalid_frame
      | exception Interpreter.Machine_intf.Invalid_memory_trap ->
          Invalid_memory_access)
  | Path.Native id -> (
      match Shadow_machine.Native_shadow.run ~defects shadow ~prim_id:id with
      | Shadow_machine.Native_shadow.Succeeded -> Success
      | Shadow_machine.Native_shadow.Failed -> Failure
      | exception Interpreter.Machine_intf.Invalid_frame_access ->
          Invalid_frame
      | exception Interpreter.Machine_intf.Invalid_memory_trap ->
          Invalid_memory_access)

(* Inherit already-negated flags from the seed prefix (the clauses the
   re-execution reproduced). *)
let align ~(seed : PC.t) (raw : PC.t) : PC.t =
  let rec go seed raw =
    match (seed, raw) with
    | ( (s : PC.clause) :: seed_rest,
        (r : PC.clause) :: raw_rest )
      when Sym.equal s.cond r.cond ->
        { r with already_negated = s.already_negated } :: go seed_rest raw_rest
    | _, raw -> raw
  in
  go seed raw

(* All child seeds of an explored path: negate each not-already-negated
   clause, keeping the prefix before it.  The canonical [prepared] form
   of each child is built alongside by extending a running prefix — each
   clause is normalized once per parent, and a child costs one extra
   insertion instead of re-canonicalising its whole conjunction (the
   sibling negations share the prefix work).  Also returns the full
   path condition's prepared form, which curation reuses. *)
let children_with_preps (pc : PC.t) :
    Solver.Solve.prepared * (PC.t * Solver.Solve.prepared) list =
  let rec go prefix_rev prefix_prep acc = function
    | [] -> (prefix_prep, List.rev acc)
    | (c : PC.clause) :: rest ->
        let acc =
          if c.already_negated then acc
          else
            let child =
              List.rev_append prefix_rev
                [ { PC.cond = Sym.negate c.cond; already_negated = true } ]
            in
            (child, Solver.Solve.extend prefix_prep (Sym.negate c.cond)) :: acc
        in
        go (c :: prefix_rev) (Solver.Solve.extend prefix_prep c.cond) acc rest
  in
  go [] Solver.Solve.empty_prepared [] pc

let explore_uncached ?(max_iterations = 128)
    ?(defects = Interpreter.Defects.default) ?(lookahead = false)
    (subject : Path.subject) : result =
  let gen = Sym.Gen.create () in
  (* One scratch memory per subject, reset to its post-method watermark
     before each materialisation, instead of a fresh heap per path
     iteration (the allocation hot path of this loop). *)
  let arena = Materialize.arena ~method_in:(method_in_for subject) in
  let recv_var = Sym.Gen.fresh gen ~name:"receiver" ~sort:Sym.Oop in
  let size_var = Sym.Gen.fresh gen ~name:"operand_stack_size" ~sort:Sym.Int in
  let stack_size_term = Sym.Var size_var in
  let temp_vars =
    Array.init (temp_count subject) (fun i ->
        Sym.Gen.fresh gen ~name:(Printf.sprintf "temp%d" i) ~sort:Sym.Oop)
  in
  let entry_vars : (int, Sym.var) Hashtbl.t = Hashtbl.create 8 in
  let entry_var rank =
    match Hashtbl.find_opt entry_vars rank with
    | Some v -> v
    | None ->
        let v = Sym.Gen.fresh gen ~name:(Printf.sprintf "s%d" rank) ~sort:Sym.Oop in
        Hashtbl.replace entry_vars rank v;
        v
  in
  (* Worklist entries carry their canonical prepared form; [visited] is
     keyed by its fingerprint, so two seeds whose conjunctions
     canonicalise identically — same model, same materialisation, same
     execution — are explored once. *)
  let worklist = Queue.create () in
  Queue.add (PC.empty, Solver.Solve.empty_prepared) worklist;
  let visited = Hashtbl.create 64 in
  Hashtbl.replace visited (Solver.Solve.fingerprint Solver.Solve.empty_prepared)
    ();
  let seen_paths = Hashtbl.create 64 in
  let paths = ref [] in
  let iterations = ref 0 in
  let skipped = ref 0 in
  let unsat = ref 0 in
  let unsupported = ref false in
  (try
     while (not (Queue.is_empty worklist)) && !iterations < max_iterations do
       Exec.Budget.tick ~cost:64 ();
       let seed, seed_prep = Queue.pop worklist in
       match Solver.Solve.solve_prepared seed_prep with
       | Solver.Solve.Unsat -> incr unsat
       | Solver.Solve.Unknown _ -> incr skipped
       | Solver.Solve.Sat model -> (
           incr iterations;
           let input =
             Materialize.build ~arena ~model
               ~method_in:(method_in_for subject) ~recv_var ~temp_vars
               ~entry_var ~stack_size_term ()
           in
           let stack_syms =
             List.init input.stack_depth (fun i ->
                 Sym.Var (entry_var (input.stack_depth - 1 - i)))
           in
           let shadow =
             Shadow_machine.create ~om:input.om ~frame:input.frame
               ~meth:input.meth ~recv_sym:(Sym.Var recv_var)
               ~temps_sym:(Array.map (fun v -> Sym.Var v) temp_vars)
               ~stack_syms ~stack_size_term
               ~bindings:(List.map (fun (t, v) -> (t, v)) input.bindings)
           in
           match execute_once ~lookahead ~defects subject shadow with
           | exception Interpreter.Machine_intf.Unsupported_feature _ ->
               unsupported := true;
               raise Exit
           | exit_ ->
               let aligned = align ~seed (Shadow_machine.path shadow) in
               let input_frame =
                 Symbolic.Abstract_frame.make ~receiver:(Sym.Var recv_var)
                   ~method_oop:(Bytecodes.Compiled_method.oop input.meth)
                   ~temps:(Array.map (fun v -> Sym.Var v) temp_vars)
                   ~operand_stack:stack_syms ~pc:0
               in
               let full_prep, kids = children_with_preps aligned in
               let k =
                 PC.to_string aligned ^ " => "
                 ^ Interpreter.Exit_condition.to_string exit_
               in
               if not (Hashtbl.mem seen_paths k) then begin
                 Hashtbl.replace seen_paths k ();
                 (* Curate here, once per distinct path: every consumer
                    (compiler × arch) reads the verdict off the path
                    instead of re-posing the full conjunction. *)
                 let curation = Solver.Solve.solve_prepared full_prep in
                 let path =
                   {
                     Path.subject;
                     input_frame;
                     input_stack_depth = input.stack_depth;
                     output =
                       {
                         Path.stack = Shadow_machine.output_stack_syms shadow;
                         temps = Shadow_machine.output_temps_syms shadow;
                         pc = Interpreter.Frame.pc input.frame;
                         effects = Shadow_machine.effects shadow;
                         return_value = Shadow_machine.return_sym shadow;
                       };
                     path_condition = aligned;
                     exit_;
                     model;
                     curation;
                     stack_size_term;
                   }
                 in
                 paths := path :: !paths
               end;
               List.iter
                 (fun (child, cprep) ->
                   let ck = Solver.Solve.fingerprint cprep in
                   if not (Hashtbl.mem visited ck) then begin
                     Hashtbl.replace visited ck ();
                     (* a syntactic refutation (complement pair, empty
                        constant-bound meet) prunes the child without a
                        solver call *)
                     if Solver.Solve.prepared_unsat cprep then incr unsat
                     else Queue.add (child, cprep) worklist
                   end)
                 kids)
     done
   with Exit -> ());
  {
    subject;
    paths = List.rev !paths;
    iterations = !iterations;
    skipped_negations = !skipped;
    unsat_negations = !unsat;
    unsupported = !unsupported;
  }

(* The path-summary cache.  Exploration depends only on (subject,
   defects, iteration bound, lookahead) — every fresh [Gen] numbers its
   variables identically — so the three byte-code compilers and the
   validator share one exploration per subject instead of re-running it
   per consumer.  Results are immutable once built and safe to share
   across domains; the memo's in-flight dedup means concurrent consumers
   block on, rather than duplicate, a running exploration. *)
let cache :
    (Path.subject * Interpreter.Defects.t * int * bool, result) Exec.Memo.t =
  Exec.Memo.create ()

(* The persistent layer.  Exploration runs the interpreter shadow, never
   compiled code, so summaries depend on (subject, defect configuration,
   bounds) only — no {!Jit.Fault.cache_tag} in the key (compiled-code
   mutants cannot change them; the validator's machine-path entries are
   the ones that carry the tag). *)
let store_ns = "path-summary:1"

let store_key subject defects max_iterations lookahead =
  Printf.sprintf "%s|defects:%s|iters:%d|lookahead:%b"
    (Path.subject_name subject)
    (Digest.to_hex (Digest.string (Marshal.to_string defects [])))
    max_iterations lookahead

let explore ?(max_iterations = 128) ?(defects = Interpreter.Defects.default)
    ?(lookahead = false) (subject : Path.subject) : result =
  (* Chaos fires before the memo so a warm cache can never mask an
     injected hang, and a faulted attempt never poisons the cache. *)
  Exec.Chaos.hook_explorer ();
  Exec.Memo.find_or_add cache
    (subject, defects, max_iterations, lookahead)
    (fun _ ->
      let key = store_key subject defects max_iterations lookahead in
      match Exec.Store.lookup ~ns:store_ns ~key with
      | Some r -> r
      | None ->
          let r = explore_uncached ~max_iterations ~defects ~lookahead subject in
          Exec.Store.record ~ns:store_ns ~key r;
          r)

let cache_stats () = Exec.Memo.stats cache
let reset_cache () = Exec.Memo.clear cache
