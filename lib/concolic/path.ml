(* Explored paths: everything the differential tester needs to re-create
   the input, run the compiled code, and validate the output (§3.2: copies
   of both the input and output constraints, plus the exit condition). *)

module Sym = Symbolic.Sym_expr

type subject =
  | Bytecode of Bytecodes.Opcode.t
  | Native of int
  | Bytecode_seq of Bytecodes.Opcode.t list
      (* sequence testing: the paper's future work ("generate minimal and
         relevant byte-code sequences for unit testing the JIT compiler") *)

let subject_name = function
  | Bytecode op -> Bytecodes.Opcode.mnemonic op
  | Native id -> Interpreter.Primitive_table.name id
  | Bytecode_seq ops ->
      "seq[" ^ String.concat "; " (List.map Bytecodes.Opcode.mnemonic ops) ^ "]"

let subject_is_native = function
  | Bytecode _ | Bytecode_seq _ -> false
  | Native _ -> true

type output = {
  stack : Sym.t list; (* bottom-up, after execution *)
  temps : Sym.t array;
  pc : int;
  effects : Shadow_machine.effect list;
  return_value : Sym.t option;
}

type t = {
  subject : subject;
  input_frame : Symbolic.Abstract_frame.t;
  input_stack_depth : int;
  output : output;
  path_condition : Symbolic.Path_condition.t;
  exit_ : Interpreter.Exit_condition.t;
  model : Solver.Model.t; (* the witness that drove this path *)
  curation : Solver.Solve.verdict;
      (* the full path condition's verdict, computed once at exploration
         time; consumers (one per compiler × arch) curate on it instead
         of re-posing the same query *)
  stack_size_term : Sym.t;
}

(* Canonical key for deduplication: condition sequence + exit. *)
let key t =
  Symbolic.Path_condition.to_string t.path_condition
  ^ " => "
  ^ Interpreter.Exit_condition.to_string t.exit_

let pp ppf t =
  Fmt.pf ppf "@[<v>%s: %s@,  path: %s@,  out stack: [%a] pc=%d@]"
    (subject_name t.subject)
    (Interpreter.Exit_condition.to_string t.exit_)
    (Symbolic.Path_condition.to_string t.path_condition)
    Fmt.(list ~sep:(any " | ") (fun ppf e -> Fmt.string ppf (Sym.to_string e)))
    t.output.stack t.output.pc
