(** Input materialisation: interpret a solver model's structural object
    descriptions to build a concrete object memory and VM frame (§3.2).

    Deterministic for a given model, so the explorer (interpreter side)
    and the differential tester (compiled side) rebuild byte-identical
    inputs independently — including identical oops, since heap
    allocation order is reproduced exactly. *)

type input = {
  om : Vm_objects.Object_memory.t;
  frame : Interpreter.Frame.t;
  meth : Bytecodes.Compiled_method.t;
  bindings : (Symbolic.Sym_expr.t * Vm_objects.Value.t) list;
      (** term → materialised oop, for every materialised input term *)
  stack_depth : int;
}

type arena
(** A reusable scratch object memory, pre-seeded with the method under
    test.  {!build} with an arena rolls the heap back to the
    post-method watermark instead of creating a fresh memory, removing
    the allocation hot path of the explore loop; the replayed
    allocations are oop-for-oop identical to a fresh build. *)

val arena :
  method_in:(Vm_objects.Object_memory.t -> Bytecodes.Compiled_method.t) ->
  arena
(** Create the scratch memory and build the method once.  An arena is
    single-owner mutable state: use from one domain at a time, and note
    that the [input.om] returned by {!build} aliases it — take a fresh
    arena wherever the memory must outlive the next [build]. *)

val build :
  ?arena:arena ->
  model:Solver.Model.t ->
  method_in:(Vm_objects.Object_memory.t -> Bytecodes.Compiled_method.t) ->
  recv_var:Symbolic.Sym_expr.var ->
  temp_vars:Symbolic.Sym_expr.var array ->
  entry_var:(int -> Symbolic.Sym_expr.var) ->
  stack_size_term:Symbolic.Sym_expr.t ->
  unit ->
  input
(** [entry_var rank] is the input-stack variable at [rank] below the top
    (rank 0 = top of the input operand stack). *)
