(** The concolic exploration engine (§2.3 of the paper).

    For one VM instruction (byte-code, native method, or byte-code
    sequence), repeatedly: solve the seed path-condition prefix, rebuild
    concrete inputs, execute on the shadow machine, record the path, and
    negate every not-already-negated clause to seed further explorations
    (generational search).  Unlike classic concolic testing, exploration
    does not stop at erroneous exits (§2.2). *)

type result = {
  subject : Path.subject;
  paths : Path.t list;
  iterations : int;  (** concolic executions performed *)
  skipped_negations : int;
      (** negated prefixes the solver could not crack (§4.3 limits) *)
  unsat_negations : int;  (** negated prefixes proven infeasible *)
  unsupported : bool;  (** instruction not supported by the tester (§4.3) *)
}

val explore :
  ?max_iterations:int ->
  ?defects:Interpreter.Defects.t ->
  ?lookahead:bool ->
  Path.subject ->
  result
(** Explore every execution path of one instruction ([max_iterations]
    bounds the concolic executions, default 128).  [lookahead] enables
    the compare-and-branch fusion for sequences (the byte-code
    look-aheads of §4.3, implemented here; off by default to match the
    paper's prototype).

    Memoized per (subject, defects, max_iterations, lookahead): the
    first consumer pays for the exploration, later consumers — the
    other byte-code compilers, the translation validator — share the
    immutable result.  Safe across domains (in-flight dedup). *)

val explore_uncached :
  ?max_iterations:int ->
  ?defects:Interpreter.Defects.t ->
  ?lookahead:bool ->
  Path.subject ->
  result
(** {!explore} bypassing the path-summary cache. *)

val cache_stats : unit -> Exec.Memo.stats
(** Hit/miss counters of the path-summary cache. *)

val reset_cache : unit -> unit
(** Drop all cached explorations and zero the counters. *)

val method_in_for :
  Path.subject -> Vm_objects.Object_memory.t -> Bytecodes.Compiled_method.t
(** The method under test for a subject, built in the given memory — the
    same construction the differential tester replays so inputs
    re-materialise identically. *)
