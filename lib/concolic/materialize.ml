(* Input materialisation: interpret a solver model's structural object
   descriptions to build a concrete object memory and VM frame (§3.2:
   "re-creating a VM input implies interpreting the results of the
   constraint solver using the structural information in the VM object
   constraints").

   Materialisation is deterministic for a given model, so the explorer
   (interpreter side) and the differential tester (compiled side) rebuild
   byte-identical inputs independently. *)

open Vm_objects
module Sym = Symbolic.Sym_expr

type input = {
  om : Object_memory.t;
  frame : Interpreter.Frame.t;
  meth : Bytecodes.Compiled_method.t;
  bindings : (Sym.t * Value.t) list; (* term → materialised oop *)
  stack_depth : int;
}

let max_stack_entries = 16
let max_object_slots = 128
let max_byte_size = 4096

(* Cache of invented plain-object classes, per object memory. *)
let flex_class om ~slots =
  let name = Printf.sprintf "SolverObject%d" slots in
  let table = Object_memory.class_table om in
  let found = ref None in
  Class_table.iter table (fun d ->
      if Class_desc.name d = name then found := Some d);
  match !found with
  | Some d -> Class_desc.class_id d
  | None ->
      Class_desc.class_id
        (Object_memory.register_class om ~name
           ~format:(Objformat.Fixed_pointers slots))

(* A reusable scratch memory: the stable prefix (singletons, class
   objects, the method under test) is built once, and every [build] call
   rolls the heap back to the watermark taken just after it.  Because
   materialisation only allocates above the watermark (and failed stores
   into the prefix bounds-reject before writing), the replayed
   allocations produce oops identical to a freshly created memory. *)
type arena = {
  scratch_om : Object_memory.t;
  scratch_meth : Bytecodes.Compiled_method.t;
  scratch_mark : Object_memory.mark;
}

let arena ~(method_in : Object_memory.t -> Bytecodes.Compiled_method.t) :
    arena =
  let om = Object_memory.create () in
  let meth = method_in om in
  { scratch_om = om; scratch_meth = meth; scratch_mark = Object_memory.mark om }

let build ?arena ~(model : Solver.Model.t)
    ~(method_in : Object_memory.t -> Bytecodes.Compiled_method.t)
    ~(recv_var : Sym.var) ~(temp_vars : Sym.var array)
    ~(entry_var : int -> Sym.var) ~(stack_size_term : Sym.t) () : input =
  let om, premade_meth =
    match arena with
    | Some a ->
        Object_memory.reset_to_mark a.scratch_om a.scratch_mark;
        (a.scratch_om, Some a.scratch_meth)
    | None -> (Object_memory.create (), None)
  in
  let env = Solver.Eval.env_of_model model in
  let memo : (Sym.t, Value.t) Hashtbl.t = Hashtbl.create 32 in
  let bindings = ref [] in

  (* All Slot_at / Byte_at assignments of the model, grouped by parent. *)
  let slot_assignments parent =
    List.filter_map
      (fun (k, _) ->
        match (k : Sym.t) with
        | Slot_at (p, idx) when Sym.equal p parent -> (
            match Solver.Eval.eval_int env idx with
            | i -> Some (i, k)
            | exception Solver.Eval.Failed -> None)
        | _ -> None)
      (Solver.Model.oop_bindings model)
  in
  let byte_assignments parent =
    List.filter_map
      (fun (k, v) ->
        match (k : Sym.t) with
        | Byte_at (p, idx) when Sym.equal p parent -> (
            match Solver.Eval.eval_int env idx with
            | i -> Some (i, v)
            | exception Solver.Eval.Failed -> None)
        | _ -> None)
      (Solver.Model.int_bindings model)
  in

  let rec materialize (term : Sym.t) : Value.t =
    match Hashtbl.find_opt memo term with
    | Some v -> v
    | None ->
        let desc =
          match Solver.Model.oop model term with
          | Some d -> d
          | None -> Solver.Model.D_small_int 0 (* unconstrained default *)
        in
        let v = of_desc term desc in
        Hashtbl.replace memo term v;
        bindings := (term, v) :: !bindings;
        v

  and of_desc term (desc : Solver.Model.oop_desc) : Value.t =
    match desc with
    | D_small_int v ->
        let v = max Value.min_small_int (min Value.max_small_int v) in
        Value.of_small_int v
    | D_float f -> Object_memory.float_object_of om f
    | D_nil -> Object_memory.nil om
    | D_true -> Object_memory.true_obj om
    | D_false -> Object_memory.false_obj om
    | D_class { described_class_id } ->
        Object_memory.class_object om ~class_id:described_class_id
    | D_object { class_id; num_slots } -> (
        let num_slots = max 0 (min max_object_slots num_slots) in
        match class_id with
        | Some cid ->
            let desc = Class_table.lookup_exn (Object_memory.class_table om) cid in
            let indexable =
              if Class_desc.is_variable desc then
                max 0 (num_slots - Class_desc.fixed_size desc)
              else 0
            in
            let obj =
              Object_memory.instantiate_class om ~class_id:cid
                ~indexable_size:indexable
            in
            fill_slots term obj;
            obj
        | None ->
            let cid = flex_class om ~slots:num_slots in
            let obj =
              Object_memory.instantiate_class om ~class_id:cid
                ~indexable_size:0
            in
            fill_slots term obj;
            obj)
    | D_byte_object { class_id; size } ->
        let size = max 0 (min max_byte_size size) in
        let cid = Option.value class_id ~default:Class_table.byte_array_id in
        let obj =
          Object_memory.instantiate_class om ~class_id:cid ~indexable_size:size
        in
        List.iter
          (fun (i, b) ->
            if i >= 0 && i < size then
              Object_memory.store_byte om obj i (b land 0xff))
          (byte_assignments term);
        obj

  and fill_slots term obj =
    let total = Object_memory.num_slots om obj in
    List.iter
      (fun (i, slot_term) ->
        if i >= 0 && i < total then
          Object_memory.store_pointer om obj i (materialize slot_term))
      (slot_assignments term)
  in

  (* Character objects need their value slot set from [Char_value_of]. *)
  let patch_character term v =
    if
      Value.is_pointer v
      && Object_memory.class_index_of om v = Class_table.character_id
    then
      let cv =
        Solver.Model.int_or model (Sym.Char_value_of term) ~default:65
      in
      Object_memory.store_pointer om v 0
        (Value.of_small_int (max 0 (min 0x10FFFF cv)))
  in

  (* Build the method first so its oop is stable, then the frame inputs.
     An arena already holds the method (below its watermark). *)
  let meth =
    match premade_meth with Some m -> m | None -> method_in om
  in
  let receiver = materialize (Sym.Var recv_var) in
  patch_character (Sym.Var recv_var) receiver;
  let temps =
    Array.map
      (fun v ->
        let value = materialize (Sym.Var v) in
        patch_character (Sym.Var v) value;
        value)
      temp_vars
  in
  let depth =
    let d =
      match Solver.Model.int model stack_size_term with
      | Some d -> d
      | None -> 0
    in
    max 0 (min max_stack_entries d)
  in
  (* Bottom-up: ranks depth-1 .. 0 (rank 0 is the top of stack). *)
  let stack =
    List.init depth (fun i ->
        let rank = depth - 1 - i in
        let v = materialize (Sym.Var (entry_var rank)) in
        patch_character (Sym.Var (entry_var rank)) v;
        v)
  in
  let frame = Interpreter.Frame.create ~receiver ~meth ~temps ~stack in
  { om; frame; meth; bindings = !bindings; stack_depth = depth }
