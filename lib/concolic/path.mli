(** Explored paths: everything the differential tester needs to re-create
    the input, run the compiled code and validate the output — copies of
    the input and output constraints plus the exit condition (§3.2). *)

module Sym = Symbolic.Sym_expr

type subject =
  | Bytecode of Bytecodes.Opcode.t
  | Native of int  (** native method (primitive) id *)
  | Bytecode_seq of Bytecodes.Opcode.t list
      (** sequence testing — the paper's future-work extension *)

val subject_name : subject -> string
val subject_is_native : subject -> bool

type output = {
  stack : Sym.t list;  (** operand stack after execution, bottom-up *)
  temps : Sym.t array;
  pc : int;
  effects : Shadow_machine.effect list;  (** heap writes performed *)
  return_value : Sym.t option;  (** on method-return exits *)
}

type t = {
  subject : subject;
  input_frame : Symbolic.Abstract_frame.t;
  input_stack_depth : int;
  output : output;
  path_condition : Symbolic.Path_condition.t;
  exit_ : Interpreter.Exit_condition.t;
  model : Solver.Model.t;  (** the witness that drove this path *)
  curation : Solver.Solve.verdict;
      (** verdict of the full path condition, computed once at
          exploration time; consumers curate on it instead of re-posing
          the query per (compiler × arch) *)
  stack_size_term : Sym.t;
}

val key : t -> string
(** Canonical deduplication key: condition sequence + exit. *)

val pp : t Fmt.t
