(* QCheck-based generation of random *well-formed* compiled methods.

   The generator builds byte-code sequences that are stack-safe by
   construction — each opcode is drawn from the pool its current stack
   depth permits — and every emitted sequence is still filtered through
   the PR 1 byte-code verifier ([Bytecode_verifier.verify_seq] must
   return no findings), so mutants are exercised on generated subjects
   the whole pipeline accepts, not just the curated universe.

   Generation is seeded and uses no global randomness: the same seed
   always yields the same subjects, which the kill matrix's determinism
   (byte-identical output at any [-j]) depends on. *)

module Op = Bytecodes.Opcode

let num_literals = Array.length Verify.default_literals

(* Opcodes safe for the concolic sequence tester, grouped by the operand
   stack depth they require.  Jumps, sends and receiver-variable stores
   are deliberately out: they end or leave the unit, which is legitimate
   but wastes mutant-execution budget on single-path sequences. *)
let pushes : Op.t list =
  [
    Op.Push_zero;
    Op.Push_one;
    Op.Push_two;
    Op.Push_minus_one;
    Op.Push_true;
    Op.Push_false;
    Op.Push_nil;
    Op.Push_receiver;
    Op.Push_literal_constant 1;
    Op.Push_literal_constant 3;
    Op.Push_integer_byte 5;
    Op.Push_integer_byte (-7);
  ]

let unary : Op.t list = [ Op.Dup; Op.Pop ]

let binary : Op.t list =
  [
    Op.Swap;
    Op.Arith_special Op.Sel_add;
    Op.Arith_special Op.Sel_sub;
    Op.Arith_special Op.Sel_mul;
    Op.Arith_special Op.Sel_lt;
    Op.Arith_special Op.Sel_le;
    Op.Arith_special Op.Sel_gt;
    Op.Arith_special Op.Sel_ge;
    Op.Arith_special Op.Sel_eq;
    Op.Arith_special Op.Sel_ne;
    Op.Arith_special Op.Sel_bit_and;
    Op.Arith_special Op.Sel_bit_or;
  ]

let depth_after depth op =
  (* all pool opcodes consume [min_operands] and leave a predictable
     depth: pushes +1, Dup +1, Pop -1, Swap 0, arith specials -1 *)
  match op with
  | Op.Dup -> depth + 1
  | Op.Pop -> depth - 1
  | Op.Swap -> depth
  | Op.Arith_special _ -> depth - 1
  | _ -> depth + 1

(* One sequence: 2-6 opcodes, tracking depth so the verifier's stack
   balance pass accepts it from an empty initial stack. *)
let gen_seq : Op.t list QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 2 6 >>= fun len ->
  let rec build depth acc n st =
    if n = 0 then List.rev acc
    else
      let pool =
        if depth >= 2 then pushes @ unary @ binary
        else if depth >= 1 then pushes @ unary
        else pushes
      in
      let op = generate1 ~rand:st (oneofl pool) in
      build (depth_after depth op) (op :: acc) (n - 1) st
  in
  fun st -> build 0 [] len st

let well_formed (ops : Op.t list) : bool =
  Verify.Bytecode_verifier.verify_seq ~num_literals ~initial_depth:0 ops = []

(* [n] distinct well-formed sequences, deterministically from [seed]. *)
let generate ~seed n : Op.t list list =
  let rand = Random.State.make [| seed |] in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let budget = ref (n * 50) in
  while List.length !out < n && !budget > 0 do
    decr budget;
    let ops = QCheck.Gen.generate1 ~rand gen_seq in
    let key = String.concat ";" (List.map Op.mnemonic ops) in
    if (not (Hashtbl.mem seen key)) && well_formed ops then begin
      Hashtbl.replace seen key ();
      out := ops :: !out
    end
  done;
  List.rev !out

let subjects ~seed n : Concolic.Path.subject list =
  List.map (fun ops -> Concolic.Path.Bytecode_seq ops) (generate ~seed n)
