(* QCheck-based generation of random *well-formed* compiled methods.

   The generator builds byte-code sequences that are stack-safe by
   construction — each opcode is drawn from the pool its current stack
   depth permits — and every emitted sequence is still filtered through
   the PR 1 byte-code verifier ([Bytecode_verifier.verify_seq] must
   return no findings), so mutants are exercised on generated subjects
   the whole pipeline accepts, not just the curated universe.

   Generation is seeded and uses no global randomness: the same seed
   always yields the same subjects, which the kill matrix's determinism
   (byte-identical output at any [-j]) depends on.

   Every knob lives in a [params] record so other producers — the
   template hole-filler of [Templates.Corpus] in particular — can reuse
   the pools with wider ranges instead of copy-pasting them.
   [default_params] reproduces the historical hardcoded pools exactly,
   in the same order, so seeded output under the defaults is
   byte-for-byte what it always was. *)

module Op = Bytecodes.Opcode

let num_literals = Array.length Verify.default_literals

type params = {
  min_len : int;  (** shortest sequence emitted *)
  max_len : int;  (** longest sequence emitted *)
  constant_pushes : Op.t list;
      (** zero-operand pushes with no immediate (constants, receiver) *)
  literal_indices : int list;  (** [Push_literal_constant] frame indices *)
  int_bytes : int list;  (** [Push_integer_byte] payloads *)
  temp_indices : int list;
      (** [Push_temp] slots — unused by [gen_seq] itself, the pool
          template hole-filling draws temp holes from *)
  recv_var_indices : int list;
      (** receiver instance-variable indices (the receiver-class pool);
          like [temp_indices], consumed by template hole-filling *)
  unary : Op.t list;  (** pool needing one operand *)
  binary : Op.t list;  (** pool needing two operands *)
}

(* Opcodes safe for the concolic sequence tester, grouped by the operand
   stack depth they require.  Jumps, sends and receiver-variable stores
   are deliberately out: they end or leave the unit, which is legitimate
   but wastes mutant-execution budget on single-path sequences. *)
let default_params =
  {
    min_len = 2;
    max_len = 6;
    constant_pushes =
      [
        Op.Push_zero;
        Op.Push_one;
        Op.Push_two;
        Op.Push_minus_one;
        Op.Push_true;
        Op.Push_false;
        Op.Push_nil;
        Op.Push_receiver;
      ];
    literal_indices = [ 1; 3 ];
    int_bytes = [ 5; -7 ];
    temp_indices = [ 0; 1; 2 ];
    recv_var_indices = [ 0; 1; 2; 3 ];
    unary = [ Op.Dup; Op.Pop ];
    binary =
      [
        Op.Swap;
        Op.Arith_special Op.Sel_add;
        Op.Arith_special Op.Sel_sub;
        Op.Arith_special Op.Sel_mul;
        Op.Arith_special Op.Sel_lt;
        Op.Arith_special Op.Sel_le;
        Op.Arith_special Op.Sel_gt;
        Op.Arith_special Op.Sel_ge;
        Op.Arith_special Op.Sel_eq;
        Op.Arith_special Op.Sel_ne;
        Op.Arith_special Op.Sel_bit_and;
        Op.Arith_special Op.Sel_bit_or;
      ];
  }

let pushes p : Op.t list =
  p.constant_pushes
  @ List.map (fun i -> Op.Push_literal_constant i) p.literal_indices
  @ List.map (fun n -> Op.Push_integer_byte n) p.int_bytes

let depth_after depth op =
  (* all pool opcodes consume [min_operands] and leave a predictable
     depth: pushes +1, Dup +1, Pop -1, Swap 0, arith specials -1 *)
  match op with
  | Op.Dup -> depth + 1
  | Op.Pop -> depth - 1
  | Op.Swap -> depth
  | Op.Arith_special _ -> depth - 1
  | _ -> depth + 1

(* One sequence: [min_len]-[max_len] opcodes, tracking depth so the
   verifier's stack balance pass accepts it from an empty initial
   stack. *)
let gen_seq_with (p : params) : Op.t list QCheck.Gen.t =
  let pushes = pushes p in
  let open QCheck.Gen in
  int_range p.min_len p.max_len >>= fun len ->
  let rec build depth acc n st =
    if n = 0 then List.rev acc
    else
      let pool =
        if depth >= 2 then pushes @ p.unary @ p.binary
        else if depth >= 1 then pushes @ p.unary
        else pushes
      in
      let op = generate1 ~rand:st (oneofl pool) in
      build (depth_after depth op) (op :: acc) (n - 1) st
  in
  fun st -> build 0 [] len st

let gen_seq : Op.t list QCheck.Gen.t = gen_seq_with default_params

let well_formed (ops : Op.t list) : bool =
  Verify.Bytecode_verifier.verify_seq ~num_literals ~initial_depth:0 ops = []

(* [n] distinct well-formed sequences, deterministically from [seed]. *)
let generate ?(params = default_params) ~seed n : Op.t list list =
  let rand = Random.State.make [| seed |] in
  let gen = gen_seq_with params in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let budget = ref (n * 50) in
  while List.length !out < n && !budget > 0 do
    decr budget;
    let ops = QCheck.Gen.generate1 ~rand gen in
    let key = String.concat ";" (List.map Op.mnemonic ops) in
    if (not (Hashtbl.mem seen key)) && well_formed ops then begin
      Hashtbl.replace seen key ();
      out := ops :: !out
    end
  done;
  List.rev !out

let subjects ?params ~seed n : Concolic.Path.subject list =
  List.map
    (fun ops -> Concolic.Path.Bytecode_seq ops)
    (generate ?params ~seed n)
