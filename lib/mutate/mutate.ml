(* The mutation operators: systematically planted compiler faults, used
   to measure oracle strength (which of the three oracle layers — static
   verify, translation validate, differential run — kills each mutant).

   Twelve operators spanning the three pipeline layers:

   - byte-code template selection: the front-end expands the wrong
     opcode's template, or reads the wrong literal-frame index;
   - cogit IR: a dropped type guard, swapped non-commutative operands,
     a wrong inlined constant, a dropped overflow check, an elided
     spill store;
   - machine-code lowering: a flipped condition code, a clobbered
     destination register, a skipped frame store, an off-by-one slot
     index, a wrong stop marker — each firing on both ISA styles.

   Every operator rewrites the FIRST matching site only (one mutant, one
   planted fault) and reports inapplicability by returning [None], which
   {!Jit.Fault} translates into a not-fired activation; the kill matrix
   only schedules (operator, compiler, subject) triples whose fault
   actually fires. *)

module Op = Bytecodes.Opcode
module MC = Machine.Machine_code
module Ir = Jit.Ir
module Fault = Jit.Fault

type operator = Fault.op = {
  id : string;
  layer : Fault.layer;
  rewrite_opcode : Op.t -> Op.t option;
  rewrite_ir : Fault.stage -> Ir.ir list -> Ir.ir list option;
  rewrite_machine : MC.program -> MC.program option;
}

let v ?(rewrite_opcode = Fault.none_opcode) ?(rewrite_ir = Fault.none_ir)
    ?(rewrite_machine = Fault.none_machine) ~layer id =
  { id; layer; rewrite_opcode; rewrite_ir; rewrite_machine }

(* --- IR list edits, first-match-only --- *)

let ir_remove_first pred ir =
  let rec go acc = function
    | [] -> None
    | i :: rest when pred i -> Some (List.rev_append acc rest)
    | i :: rest -> go (i :: acc) rest
  in
  go [] ir

let ir_rewrite_first f ir =
  let rec go acc = function
    | [] -> None
    | i :: rest -> (
        match f i with
        | Some i' -> Some (List.rev_append acc (i' :: rest))
        | None -> go (i :: acc) rest)
  in
  go [] ir

(* Stage-gated IR rewrite. *)
let at stage f s ir = if s = stage then f ir else None

(* --- 1. byte-code template selection: wrong template ---

   Arity-preserving swaps ([Op.min_operands] is unchanged), so the
   compilation-unit schema — setup pushes + instruction + markers — stays
   well-formed and every oracle sees a plausible, wrong unit. *)

let wrong_template_of : Op.t -> Op.t option = function
  | Op.Push_zero -> Some Op.Push_one
  | Op.Push_one -> Some Op.Push_two
  | Op.Push_two -> Some Op.Push_minus_one
  | Op.Push_minus_one -> Some Op.Push_zero
  | Op.Push_true -> Some Op.Push_false
  | Op.Push_false -> Some Op.Push_nil
  | Op.Push_nil -> Some Op.Push_true
  | Op.Return_true -> Some Op.Return_false
  | Op.Return_false -> Some Op.Return_nil
  | Op.Return_nil -> Some Op.Return_true
  | Op.Arith_special sel ->
      let swap = function
        | Op.Sel_add -> Some Op.Sel_sub
        | Op.Sel_sub -> Some Op.Sel_add
        | Op.Sel_lt -> Some Op.Sel_le
        | Op.Sel_le -> Some Op.Sel_lt
        | Op.Sel_gt -> Some Op.Sel_ge
        | Op.Sel_ge -> Some Op.Sel_gt
        | Op.Sel_eq -> Some Op.Sel_ne
        | Op.Sel_ne -> Some Op.Sel_eq
        | Op.Sel_bit_and -> Some Op.Sel_bit_or
        | Op.Sel_bit_or -> Some Op.Sel_bit_and
        | _ -> None
      in
      Option.map (fun s -> Op.Arith_special s) (swap sel)
  | _ -> None

let bc_wrong_template =
  v ~layer:Fault.L_template ~rewrite_opcode:wrong_template_of
    "bc-wrong-template"

(* --- 2. byte-code template selection: literal index off by one ---

   Downward ([n] → [n-1]) so the mutated index is always in bounds: the
   fault is a wrong answer, never a compile-time crash. *)

let bc_literal_off_by_one =
  v ~layer:Fault.L_template
    ~rewrite_opcode:(function
      | Op.Push_literal_constant n when n >= 1 ->
          Some (Op.Push_literal_constant (n - 1))
      | Op.Push_literal_ext n when n >= 1 -> Some (Op.Push_literal_ext (n - 1))
      | _ -> None)
    "bc-literal-off-by-one"

(* --- 3. IR: dropped type guard --- *)

let is_guard = function
  | Ir.I_check_small_int _ | Ir.I_check_not_small_int _ | Ir.I_check_class _
  | Ir.I_check_pointers _ | Ir.I_check_bytes _ | Ir.I_check_indexable _ ->
      true
  | _ -> false

let ir_drop_guard =
  v ~layer:Fault.L_ir
    ~rewrite_ir:(at Fault.Frontend (ir_remove_first is_guard))
    "ir-drop-guard"

(* --- 4. IR: swapped operands of a non-commutative ALU op --- *)

let ir_swap_operands =
  v ~layer:Fault.L_ir
    ~rewrite_ir:
      (at Fault.Frontend
         (ir_rewrite_first (function
           | Ir.I_alu
               ( ((Ir.Sub | Ir.Div | Ir.Mod | Ir.Quo | Ir.Rem | Ir.Shl
                  | Ir.Sar) as op),
                 d,
                 a,
                 b )
             when a <> b ->
               Some (Ir.I_alu (op, d, b, a))
           | _ -> None)))
    "ir-swap-operands"

(* --- 5. IR: wrong inlined constant ---

   Bump the first constant operand by 8: a word-aligned offset keeps the
   tag bit, so the wrong value still parses as the same kind of word —
   the hardest sort of constant-fold bug to notice. *)

let bump_constant = function
  | Ir.C c -> Some (Ir.C (c + 8))
  | Ir.V _ | Ir.Recv | Ir.Arg _ -> None

let ir_wrong_constant =
  v ~layer:Fault.L_ir
    ~rewrite_ir:
      (at Fault.Frontend
         (ir_rewrite_first (fun i ->
              match i with
              | Ir.I_move (d, o) ->
                  Option.map (fun o' -> Ir.I_move (d, o')) (bump_constant o)
              | Ir.I_push o ->
                  Option.map (fun o' -> Ir.I_push o') (bump_constant o)
              | Ir.I_alu (op, d, a, b) -> (
                  match bump_constant b with
                  | Some b' -> Some (Ir.I_alu (op, d, a, b'))
                  | None ->
                      Option.map
                        (fun a' -> Ir.I_alu (op, d, a', b))
                        (bump_constant a))
              | Ir.I_cmp_jump (c, a, b, l) -> (
                  match bump_constant b with
                  | Some b' -> Some (Ir.I_cmp_jump (c, a, b', l))
                  | None ->
                      Option.map
                        (fun a' -> Ir.I_cmp_jump (c, a', b, l))
                        (bump_constant a))
              | Ir.I_store_temp (n, o) ->
                  Option.map
                    (fun o' -> Ir.I_store_temp (n, o'))
                    (bump_constant o)
              | Ir.I_return o ->
                  Option.map (fun o' -> Ir.I_return o') (bump_constant o)
              | _ -> None)))
    "ir-wrong-constant"

(* --- 6. IR: dead spill elision ---

   Final stage only: spills exist after register allocation.  Dropping
   the store leaves the later [I_spill_load] reading a stale (zero)
   slot — and trips the IR verifier's spill read-before-write pass. *)

let ir_dead_spill =
  v ~layer:Fault.L_ir
    ~rewrite_ir:
      (at Fault.Final
         (ir_remove_first (function
           | Ir.I_spill_store _ -> true
           | _ -> false)))
    "ir-dead-spill"

(* --- 7. IR: dropped overflow check --- *)

let ir_drop_overflow =
  v ~layer:Fault.L_ir
    ~rewrite_ir:
      (at Fault.Frontend
         (ir_remove_first (function
           | Ir.I_jump_overflow _ -> true
           | _ -> false)))
    "ir-drop-overflow"

(* --- 8. machine code: wrong condition code (every ISA style) ---

   On the flags back-ends the first conditional branch's condition code
   is flipped; on the flagless back-end the same mutation flips the
   fused compare-and-branch kind, which the condition-value domain's
   guard-provenance decode catches against the IR's lowering table. *)

let mc_wrong_cond =
  v ~layer:Fault.L_machine
    ~rewrite_machine:
      (MC.rewrite_first (function
        | MC.X_jcc (c, l) -> Some (MC.X_jcc (MC.flip_cond c, l))
        | MC.A_b (Some c, l) -> Some (MC.A_b (Some (MC.flip_cond c), l))
        | MC.R_bcc (c, rs, o, l) -> Some (MC.R_bcc (MC.flip_cond c, rs, o, l))
        | _ -> None))
    "mc-wrong-cond"

(* --- 9. machine code: clobbered destination register ---

   Redirect the first write to an allocatable temp into a scratch
   register: the intended consumer reads whatever the temp held before
   (zero on a fresh frame). *)

let mc_clobber_scratch =
  v ~layer:Fault.L_machine
    ~rewrite_machine:
      (MC.rewrite_first (fun i ->
           match MC.written_reg i with
           | Some d when d >= MC.r_temp_base ->
               Some (MC.with_written_reg i MC.r_scratch2)
           | _ -> None))
    "mc-clobber-scratch"

(* --- 10. machine code: skipped frame store --- *)

let mc_skip_frame_store =
  v ~layer:Fault.L_machine
    ~rewrite_machine:
      (MC.remove_first (function MC.Store_temp _ -> true | _ -> false))
    "mc-skip-frame-store"

(* --- 11. machine code: object-slot index off by one --- *)

let mc_slot_off_by_one =
  v ~layer:Fault.L_machine
    ~rewrite_machine:
      (MC.rewrite_first (function
        | MC.Load_slot (d, b, MC.I n) -> Some (MC.Load_slot (d, b, MC.I (n + 1)))
        | MC.Store_slot (b, MC.I n, s) ->
            Some (MC.Store_slot (b, MC.I (n + 1), s))
        | _ -> None))
    "mc-slot-off-by-one"

(* --- 12. machine code: wrong stop marker ---

   Stop markers encode which unit exit was reached (fall-through vs
   taken branch, Listing 3); shifting one misreports the exit. *)

let mc_wrong_stop_marker =
  v ~layer:Fault.L_machine
    ~rewrite_machine:
      (MC.rewrite_first (function
        | MC.Brk n -> Some (MC.Brk (n + 1))
        | _ -> None))
    "mc-wrong-stop-marker"

let all : operator list =
  [
    bc_wrong_template;
    bc_literal_off_by_one;
    ir_drop_guard;
    ir_swap_operands;
    ir_wrong_constant;
    ir_dead_spill;
    ir_drop_overflow;
    mc_wrong_cond;
    mc_clobber_scratch;
    mc_skip_frame_store;
    mc_slot_off_by_one;
    mc_wrong_stop_marker;
  ]

let find id = List.find_opt (fun o -> String.equal o.id id) all
let ids () = List.map (fun o -> o.id) all

(* The identity mutant: arms the whole fault machinery — targeted
   activation, fault-tagged caches, fresh compilation — but rewrites
   nothing.  [--pristine] runs every scheduled unit under this operator
   and asserts the oracles report zero kills, i.e. no false positives
   from the harness itself. *)
let pristine = v ~layer:Fault.L_template "pristine"

module Gen_method = Gen_method

(* --- applicability ---

   An (operator, compiler, subject) triple is applicable when compiling
   the subject under the fault actually fires a rewrite.  Compilation is
   cheap (no exploration, no solving), so the kill matrix scans the
   whole universe and schedules only live triples.  Machine-layer
   operators are probed on x86; every machine operator matches shared
   pseudo-ops or shapes all three ISA styles emit (an x86 [jcc] implies
   an IR conditional, hence an ARM [b<cc>] and a RISC-V fused [R_bcc];
   first-write-to-temp and the pseudo-op shapes exist on every style),
   so one ISA remains a faithful proxy. *)

let compile_probe ?(arch = Jit.Codegen.X86) ~defects ~compiler
    (subject : Concolic.Path.subject) () =
  match subject with
  | Concolic.Path.Native id ->
      ignore (Jit.Cogits.compile_native_to_machine ~defects ~arch id)
  | Concolic.Path.Bytecode op ->
      ignore
        (Jit.Cogits.compile_bytecode_to_machine compiler ~defects
           ~literals:Verify.default_literals
           ~stack_setup:(Verify.default_stack_setup op)
           ~arch op)
  | Concolic.Path.Bytecode_seq ops ->
      ignore
        (Jit.Cogits.compile_sequence_to_machine compiler ~defects
           ~literals:Verify.default_literals ~stack_setup:[] ~arch ops)

let applicable ~defects ~(compiler : Jit.Cogits.compiler) (op : operator)
    (subject : Concolic.Path.subject) : bool =
  (match (subject, compiler) with
  | Concolic.Path.Native _, c -> c = Jit.Cogits.Native_method_compiler
  | (Concolic.Path.Bytecode _ | Concolic.Path.Bytecode_seq _), c ->
      c <> Jit.Cogits.Native_method_compiler)
  &&
  match
    Fault.with_fault
      ~target:(Jit.Cogits.short_name compiler)
      op
      (compile_probe ~defects ~compiler subject)
  with
  | (), fired -> fired
  | exception Jit.Cogits.Not_compiled _ -> false

(* Recompile [subject] on [arch] under the *currently armed* fault,
   discarding the result.  Compilation itself is never memoized, so this
   always runs: the kill matrix calls it inside each unit's fault
   activation to make the [fired] flag a property of the
   (operator, compiler, subject, ISA) cell rather than of cache
   temperature — a fully warm oracle stack may serve every layer without
   compiling at all, even though its cached verdicts came from a
   compilation in which the rewrite did fire. *)
let probe ~defects ~(compiler : Jit.Cogits.compiler) ~arch
    (subject : Concolic.Path.subject) : unit =
  try compile_probe ~arch ~defects ~compiler subject ()
  with Jit.Cogits.Not_compiled _ -> ()
