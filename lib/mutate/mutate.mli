(** The mutation operators: systematically planted compiler faults for
    oracle-strength evaluation.  Each operator rewrites the first
    matching site of one pipeline artifact (byte-code template
    selection, cogit IR, or lowered machine code) for one targeted
    front-end; activation is via {!Jit.Fault.with_fault}. *)

type operator = Jit.Fault.op = {
  id : string;
  layer : Jit.Fault.layer;
  rewrite_opcode : Bytecodes.Opcode.t -> Bytecodes.Opcode.t option;
  rewrite_ir : Jit.Fault.stage -> Jit.Ir.ir list -> Jit.Ir.ir list option;
  rewrite_machine :
    Machine.Machine_code.program -> Machine.Machine_code.program option;
}

val all : operator list
(** The twelve operators: [bc-wrong-template], [bc-literal-off-by-one]
    (template layer); [ir-drop-guard], [ir-swap-operands],
    [ir-wrong-constant], [ir-dead-spill], [ir-drop-overflow] (IR layer);
    [mc-wrong-cond], [mc-clobber-scratch], [mc-skip-frame-store],
    [mc-slot-off-by-one], [mc-wrong-stop-marker] (machine layer). *)

val find : string -> operator option
val ids : unit -> string list

val pristine : operator
(** The identity mutant: activation without any rewrite.  Used by the
    [--pristine] gate to assert the oracle stack reports zero kills on
    unmutated compilers. *)

val applicable :
  defects:Interpreter.Defects.t ->
  compiler:Jit.Cogits.compiler ->
  operator ->
  Concolic.Path.subject ->
  bool
(** Does compiling [subject] with [compiler] under the fault actually
    fire a rewrite?  (Compilation only — no exploration or solving.)
    Native subjects are only applicable to the native-method compiler,
    byte-code subjects to the three byte-code front-ends. *)

(** QCheck-based generation of random well-formed byte-code sequences,
    each filtered through {!Verify.Bytecode_verifier.verify_seq}.
    Deterministic: the same [seed] always yields the same subjects. *)
module Gen_method : sig
  val gen_seq : Bytecodes.Opcode.t list QCheck.Gen.t
  (** One stack-safe sequence of 2-6 opcodes. *)

  val well_formed : Bytecodes.Opcode.t list -> bool
  (** No byte-code verifier findings from an empty initial stack. *)

  val generate : seed:int -> int -> Bytecodes.Opcode.t list list
  (** [n] distinct well-formed sequences, deterministically from
      [seed]. *)

  val subjects : seed:int -> int -> Concolic.Path.subject list
  (** {!generate}, wrapped as concolic sequence subjects. *)
end
