(** The mutation operators: systematically planted compiler faults for
    oracle-strength evaluation.  Each operator rewrites the first
    matching site of one pipeline artifact (byte-code template
    selection, cogit IR, or lowered machine code) for one targeted
    front-end; activation is via {!Jit.Fault.with_fault}. *)

type operator = Jit.Fault.op = {
  id : string;
  layer : Jit.Fault.layer;
  rewrite_opcode : Bytecodes.Opcode.t -> Bytecodes.Opcode.t option;
  rewrite_ir : Jit.Fault.stage -> Jit.Ir.ir list -> Jit.Ir.ir list option;
  rewrite_machine :
    Machine.Machine_code.program -> Machine.Machine_code.program option;
}

val all : operator list
(** The twelve operators: [bc-wrong-template], [bc-literal-off-by-one]
    (template layer); [ir-drop-guard], [ir-swap-operands],
    [ir-wrong-constant], [ir-dead-spill], [ir-drop-overflow] (IR layer);
    [mc-wrong-cond], [mc-clobber-scratch], [mc-skip-frame-store],
    [mc-slot-off-by-one], [mc-wrong-stop-marker] (machine layer). *)

val find : string -> operator option
val ids : unit -> string list

val pristine : operator
(** The identity mutant: activation without any rewrite.  Used by the
    [--pristine] gate to assert the oracle stack reports zero kills on
    unmutated compilers. *)

val applicable :
  defects:Interpreter.Defects.t ->
  compiler:Jit.Cogits.compiler ->
  operator ->
  Concolic.Path.subject ->
  bool
(** Does compiling [subject] with [compiler] under the fault actually
    fire a rewrite?  (Compilation only — no exploration or solving.)
    Native subjects are only applicable to the native-method compiler,
    byte-code subjects to the three byte-code front-ends. *)

val probe :
  defects:Interpreter.Defects.t ->
  compiler:Jit.Cogits.compiler ->
  arch:Jit.Codegen.arch ->
  Concolic.Path.subject ->
  unit
(** Recompile [subject] on [arch] under the currently armed fault,
    discarding the result ([Not_compiled] included).  Compilation is
    never memoized, so the call always runs; the kill matrix uses it to
    keep a unit's fired flag independent of cache temperature. *)

(** QCheck-based generation of random well-formed byte-code sequences,
    each filtered through {!Verify.Bytecode_verifier.verify_seq}.
    Deterministic: the same [seed] always yields the same subjects. *)
module Gen_method : sig
  type params = {
    min_len : int;
    max_len : int;
    constant_pushes : Bytecodes.Opcode.t list;
    literal_indices : int list;  (** [Push_literal_constant] indices *)
    int_bytes : int list;  (** [Push_integer_byte] payloads *)
    temp_indices : int list;
        (** [Push_temp] slots for template hole-filling *)
    recv_var_indices : int list;
        (** receiver instance-variable indices (the receiver-class
            pool) for template hole-filling *)
    unary : Bytecodes.Opcode.t list;
    binary : Bytecodes.Opcode.t list;
  }
  (** Every generation knob as data, so template hole-filling
      ({!Templates.Corpus}) can reuse the pools with wider ranges. *)

  val default_params : params
  (** The historical pools, in their historical order: seeded output
      under the defaults is byte-identical to what it always was. *)

  val pushes : params -> Bytecodes.Opcode.t list
  (** The zero-operand pool a [params] induces: constants, then literal
      pushes, then integer-byte pushes. *)

  val gen_seq_with : params -> Bytecodes.Opcode.t list QCheck.Gen.t
  (** One stack-safe sequence of [min_len]-[max_len] opcodes. *)

  val gen_seq : Bytecodes.Opcode.t list QCheck.Gen.t
  (** [gen_seq_with default_params]. *)

  val well_formed : Bytecodes.Opcode.t list -> bool
  (** No byte-code verifier findings from an empty initial stack. *)

  val generate :
    ?params:params -> seed:int -> int -> Bytecodes.Opcode.t list list
  (** [n] distinct well-formed sequences, deterministically from
      [seed]. *)

  val subjects :
    ?params:params -> seed:int -> int -> Concolic.Path.subject list
  (** {!generate}, wrapped as concolic sequence subjects. *)
end
