(* The public facade of the interpreter-guided differential testing
   library.

   Typical usage:

   {[
     (* explore one instruction's interpreter paths *)
     let exploration = Vm_testing.explore (`Bytecode add) in

     (* differential-test it against one compiler *)
     let report =
       Vm_testing.test_instruction ~compiler:`Stack_to_register (`Bytecode add)
     in

     (* or run the paper's full evaluation *)
     let campaign = Vm_testing.campaign () in
     Vm_testing.print_tables campaign
   ]} *)

type subject =
  [ `Bytecode of Bytecodes.Opcode.t | `Native of int (* primitive id *) ]

type compiler =
  [ `Native_methods | `Simple | `Stack_to_register | `Register_allocating ]

type arch = [ `X86 | `Arm32 | `Rv32 ]

let to_path_subject : subject -> Concolic.Path.subject = function
  | `Bytecode op -> Concolic.Path.Bytecode op
  | `Native id -> Concolic.Path.Native id

let to_cogit : compiler -> Jit.Cogits.compiler = function
  | `Native_methods -> Jit.Cogits.Native_method_compiler
  | `Simple -> Jit.Cogits.Simple_stack_cogit
  | `Stack_to_register -> Jit.Cogits.Stack_to_register_cogit
  | `Register_allocating -> Jit.Cogits.Register_allocating_cogit

let to_arch : arch -> Jit.Codegen.arch = function
  | `X86 -> Jit.Codegen.X86
  | `Arm32 -> Jit.Codegen.Arm32
  | `Rv32 -> Jit.Codegen.Rv32

(* --- exploration --- *)

let explore ?max_iterations ?defects (s : subject) =
  Concolic.Explorer.explore ?max_iterations ?defects (to_path_subject s)

(* --- differential testing --- *)

let test_instruction ?max_iterations ?(defects = Interpreter.Defects.paper)
    ?(arches = [ `X86; `Arm32; `Rv32 ]) ~(compiler : compiler) (s : subject) =
  Campaign.test_instruction ?max_iterations ~defects
    ~arches:(List.map to_arch arches)
    ~compiler:(to_cogit compiler) (to_path_subject s)

let run_path ?(defects = Interpreter.Defects.paper) ~(compiler : compiler)
    ~(arch : arch) (path : Concolic.Path.t) =
  Difftest.Runner.run_path ~defects ~compiler:(to_cogit compiler)
    ~arch:(to_arch arch) path

(* --- campaigns --- *)

let campaign ?max_iterations ?defects ?(arches = [ `X86; `Arm32; `Rv32 ])
    ?compilers () =
  Campaign.run ?max_iterations ?defects
    ~arches:(List.map to_arch arches)
    ?compilers:(Option.map (List.map to_cogit) compilers)
    ()

let print_tables ?(ppf = Format.std_formatter) c = Tables.all ppf c

(* --- introspection helpers for examples and tooling --- *)

let all_bytecode_subjects () : subject list =
  List.map (fun op -> `Bytecode op) (Bytecodes.Encoding.all_defined_opcodes ())

let all_native_subjects () : subject list =
  List.map (fun id -> `Native id) Interpreter.Primitive_table.ids

let subject_name s = Concolic.Path.subject_name (to_path_subject s)
