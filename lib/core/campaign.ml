(* Campaign orchestration: the paper's evaluation pipeline (§5).

   A campaign explores every instruction of a compiler's test universe
   with the concolic engine, then runs the differential tests on each
   curated path, on one or both ISAs, and aggregates per-instruction and
   per-compiler statistics — the data behind Table 2, Table 3 and
   Figures 5-7. *)

(* Static-vs-dynamic agreement tallies, one count per path x arch
   verdict (see Difftest.Runner.agreement). *)
type agreement_counts = {
  both_clean : int;
  both_flagged : int;
  static_only : int;
  dynamic_only : int;
}

let no_agreements =
  { both_clean = 0; both_flagged = 0; static_only = 0; dynamic_only = 0 }

let add_agreement counts = function
  | Difftest.Runner.Both_clean -> { counts with both_clean = counts.both_clean + 1 }
  | Difftest.Runner.Both_flagged ->
      { counts with both_flagged = counts.both_flagged + 1 }
  | Difftest.Runner.Static_only ->
      { counts with static_only = counts.static_only + 1 }
  | Difftest.Runner.Dynamic_only ->
      { counts with dynamic_only = counts.dynamic_only + 1 }

let sum_agreements a b =
  {
    both_clean = a.both_clean + b.both_clean;
    both_flagged = a.both_flagged + b.both_flagged;
    static_only = a.static_only + b.static_only;
    dynamic_only = a.dynamic_only + b.dynamic_only;
  }

(* Translation-validation tallies, one count per path x arch verdict
   (see Difftest.Runner.validation), plus the solver queries spent. *)
type validation_counts = {
  proved : int;
  refuted : int;
  missing : int;
      (* the subset of [refuted] whose witness is an absent template
         ("not compiled"): real divergences, but expected ones *)
  spurious : int;
  unknown : int;
  skipped : int;
  queries : int;
}

let no_validations =
  {
    proved = 0;
    refuted = 0;
    missing = 0;
    spurious = 0;
    unknown = 0;
    skipped = 0;
    queries = 0;
  }

let add_validation counts = function
  | Difftest.Runner.V_proved -> { counts with proved = counts.proved + 1 }
  | Difftest.Runner.V_refuted { witness; _ } ->
      let counts = { counts with refuted = counts.refuted + 1 } in
      if witness.Verify.Translation_validator.missing then
        { counts with missing = counts.missing + 1 }
      else counts
  | Difftest.Runner.V_spurious _ ->
      { counts with spurious = counts.spurious + 1 }
  | Difftest.Runner.V_unknown _ -> { counts with unknown = counts.unknown + 1 }
  | Difftest.Runner.V_skipped _ -> { counts with skipped = counts.skipped + 1 }

let sum_validations a b =
  {
    proved = a.proved + b.proved;
    refuted = a.refuted + b.refuted;
    missing = a.missing + b.missing;
    spurious = a.spurious + b.spurious;
    unknown = a.unknown + b.unknown;
    skipped = a.skipped + b.skipped;
    queries = a.queries + b.queries;
  }

type instruction_result = {
  subject : Concolic.Path.subject;
  paths : int; (* interpreter paths discovered *)
  curated : int; (* paths the tester could re-create and execute *)
  differences : int; (* paths that differ between engines *)
  unsupported : bool;
  explore_time : float; (* seconds of concolic exploration *)
  test_time : float; (* seconds running the generated tests *)
  diffs : Difftest.Difference.t list;
      (* witnesses deduplicated by root cause (Classify.dedupe_witnesses) *)
  static_findings : Verify.Finding.t list;
      (* the unit's static verdict, deduplicated across paths *)
  agreements : agreement_counts;
  validations : (Jit.Codegen.arch * validation_counts) list;
      (* per-ISA translation-validation tallies; [] unless ~validate *)
}

type compiler_result = {
  compiler : Jit.Cogits.compiler;
  instructions : instruction_result list;
}

type t = {
  defects : Interpreter.Defects.t;
  arches : Jit.Codegen.arch list;
  results : compiler_result list;
}

(* The test universes (§5.1): the native-method compiler is tested on the
   112 native methods; the three byte-code compilers on the byte-code
   set, minus the instructions the tester does not support (§4.3). *)
let native_subjects () =
  List.map (fun id -> Concolic.Path.Native id) Interpreter.Primitive_table.ids

let bytecode_subjects () =
  Bytecodes.Encoding.all_defined_opcodes ()
  |> List.filter (fun op -> op <> Bytecodes.Opcode.Push_this_context)
  |> List.map (fun op -> Concolic.Path.Bytecode op)

let subjects_for = function
  | Jit.Cogits.Native_method_compiler -> native_subjects ()
  | _ -> bytecode_subjects ()

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Explore one instruction and run its differential tests against one
   compiler on the given architectures.  A path counts as ONE difference
   if it differs on any architecture (the paper's per-path counting).
   With [validate], pass 5 (solver-backed translation validation) runs
   on every path x arch and its verdicts are tallied per ISA. *)
let test_instruction ?(max_iterations = 96) ?(validate = false) ?budget
    ~defects ~arches ~compiler subject : instruction_result =
  let exploration, explore_time =
    time (fun () -> Concolic.Explorer.explore ~max_iterations ~defects subject)
  in
  if exploration.unsupported then
    {
      subject;
      paths = 0;
      curated = 0;
      differences = 0;
      unsupported = true;
      explore_time;
      test_time = 0.0;
      diffs = [];
      static_findings = [];
      agreements = no_agreements;
      validations = [];
    }
  else begin
    let results, test_time =
      time (fun () ->
          List.map
            (fun path ->
              let verdicts =
                List.map
                  (fun arch ->
                    (* count the queries this domain's work spent, not a
                       global delta — concurrent units would otherwise
                       bleed into each other's tallies *)
                    let v, spent =
                      Verify.Translation_validator.with_query_count (fun () ->
                          Difftest.Runner.run_path_verified ~validate ?budget
                            ~defects ~compiler ~arch path)
                    in
                    (arch, v, spent))
                  arches
              in
              (path, verdicts))
            exploration.paths)
    in
    let outcomes_of verdicts =
      List.map (fun (_, (v : Difftest.Runner.verified), _) -> v.outcome) verdicts
    in
    let curated =
      List.length
        (List.filter
           (fun (_, verdicts) ->
             List.for_all
               (function Difftest.Runner.Curated_out _ -> false | _ -> true)
               (outcomes_of verdicts))
           results)
    in
    (* per-path differences (the paper's Table 2 counting) ... *)
    let path_diffs =
      List.filter_map
        (fun (_, verdicts) ->
          List.find_map
            (function Difftest.Runner.Diff d -> Some d | _ -> None)
            (outcomes_of verdicts))
        results
    in
    (* ... but the reported witness list is deduplicated by root cause
       (§5.3: "a defect only once") *)
    let diffs = Difftest.Classify.dedupe_witnesses path_diffs in
    let agreements =
      List.fold_left
        (fun acc (_, verdicts) ->
          List.fold_left
            (fun acc (_, (v : Difftest.Runner.verified), _) ->
              add_agreement acc v.agreement)
            acc verdicts)
        no_agreements results
    in
    let validations =
      if not validate then []
      else
        List.map
          (fun arch ->
            let counts =
              List.fold_left
                (fun acc (_, verdicts) ->
                  List.fold_left
                    (fun acc (a, (v : Difftest.Runner.verified), spent) ->
                      if a <> arch then acc
                      else
                        let acc = { acc with queries = acc.queries + spent } in
                        match v.validation with
                        | None -> acc
                        | Some vv -> add_validation acc vv)
                    acc verdicts)
                no_validations results
            in
            (arch, counts))
          arches
    in
    (* the verdict is per (subject, compiler, arch); dedupe across paths *)
    let static_findings =
      List.concat_map
        (fun arch ->
          Difftest.Runner.static_findings ~defects ~compiler ~arch subject)
        arches
      |> List.sort_uniq compare
    in
    {
      subject;
      paths = List.length exploration.paths;
      curated;
      differences = List.length path_diffs;
      unsupported = false;
      explore_time;
      test_time;
      diffs;
      static_findings;
      agreements;
      validations;
    }
  end

(* The parallel fan-out primitive: every (compiler, subject) pair is an
   independent job.  [Exec.Pool.map] deals jobs to domains but merges
   results by the unit's position in [units], so the output — and every
   table or JSON report derived from it — is identical at any [jobs].
   Each unit runs entirely on one domain, which is what makes the
   per-unit query counts ([with_query_count]) exact.

   Note on [budget]: the shared ref is decremented from several domains
   without synchronisation.  Lost decrements only let a few extra
   queries through before exhaustion, degrading some verdicts to
   [Unknown] — never changing a Proved/Refuted answer — so budgeted runs
   trade exact reproducibility for the cap, exactly as a budgeted
   sequential run already trades it across orderings.  Unbudgeted runs
   are fully deterministic. *)
let run_units ?jobs ?(max_iterations = 96) ?(validate = false) ?budget
    ~defects ~arches
    (units : (Jit.Cogits.compiler * Concolic.Path.subject) list) :
    (Jit.Cogits.compiler * instruction_result) list =
  Exec.Pool.map ?jobs
    (fun (compiler, subject) ->
      ( compiler,
        test_instruction ~max_iterations ~validate ?budget ~defects ~arches
          ~compiler subject ))
    units

let units_for compilers =
  List.concat_map
    (fun compiler ->
      List.map (fun subject -> (compiler, subject)) (subjects_for compiler))
    compilers

let run_compiler ?jobs ?(max_iterations = 96) ?(validate = false) ?budget
    ~defects ~arches compiler : compiler_result =
  let instructions =
    List.map snd
      (run_units ?jobs ~max_iterations ~validate ?budget ~defects ~arches
         (units_for [ compiler ]))
  in
  { compiler; instructions }

let run ?jobs ?(max_iterations = 96) ?(validate = false) ?budget
    ?(defects = Interpreter.Defects.paper)
    ?(arches = Jit.Codegen.all_arches)
    ?(compilers = Jit.Cogits.all) () : t =
  (* fan all compilers' units into one pool, then regroup: the last
     compiler's jobs overlap the first's drain instead of idling *)
  let flat =
    run_units ?jobs ~max_iterations ~validate ?budget ~defects ~arches
      (units_for compilers)
  in
  {
    defects;
    arches;
    results =
      List.map
        (fun compiler ->
          {
            compiler;
            instructions =
              List.filter_map
                (fun (c, r) -> if c = compiler then Some r else None)
                flat;
          })
        compilers;
  }

(* --- aggregations --- *)

let tested_instructions cr =
  List.length (List.filter (fun r -> not r.unsupported) cr.instructions)

let total_paths cr =
  List.fold_left (fun acc r -> acc + r.paths) 0 cr.instructions

let total_curated cr =
  List.fold_left (fun acc r -> acc + r.curated) 0 cr.instructions

let total_differences cr =
  List.fold_left (fun acc r -> acc + r.differences) 0 cr.instructions

let all_diffs t =
  List.concat_map (fun cr -> List.concat_map (fun r -> r.diffs) cr.instructions) t.results

(* Stable ordering for cause tallies: the hash tables accumulate in
   whatever order iteration finds the buckets, so every tally list is
   sorted by its (family, cause) key before it escapes — run-to-run and
   [-j]-independent output depends on it. *)
let by_cause_key (f1, c1, _) (f2, c2, _) = compare (f1, c1) (f2, c2)

(* Root causes, counted once per cause (paper §5.3). *)
let causes t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (d : Difftest.Difference.t) ->
      let key = (d.family, d.cause) in
      Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
    (all_diffs t);
  Hashtbl.fold (fun (family, cause) n acc -> (family, cause, n) :: acc) tbl []
  |> List.sort by_cause_key

let causes_by_family t =
  List.map
    (fun family ->
      let n =
        List.length (List.filter (fun (f, _, _) -> f = family) (causes t))
      in
      (family, n))
    Difftest.Difference.all_families

(* --- static-verifier aggregations --- *)

let agreement_totals t =
  List.fold_left
    (fun acc cr ->
      List.fold_left
        (fun acc r -> sum_agreements acc r.agreements)
        acc cr.instructions)
    no_agreements t.results

let all_static_findings t =
  List.concat_map
    (fun cr -> List.concat_map (fun r -> r.static_findings) cr.instructions)
    t.results

(* --- translation-validation aggregations --- *)

(* Per-ISA validation tallies for one compiler, summed over its
   instructions (the `vmtest validate' matrix rows). *)
let validation_by_arch cr =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun r ->
      List.iter
        (fun (arch, counts) ->
          match Hashtbl.find_opt tbl arch with
          | None -> Hashtbl.replace tbl arch counts
          | Some prev -> Hashtbl.replace tbl arch (sum_validations prev counts))
        r.validations)
    cr.instructions;
  (* rows in the canonical ISA order, not first-seen order *)
  List.filter_map
    (fun arch ->
      Option.map (fun c -> (arch, c)) (Hashtbl.find_opt tbl arch))
    Jit.Codegen.all_arches

let validation_totals_compiler cr =
  List.fold_left
    (fun acc (_, counts) -> sum_validations acc counts)
    no_validations (validation_by_arch cr)

let validation_totals t =
  List.fold_left
    (fun acc cr -> sum_validations acc (validation_totals_compiler cr))
    no_validations t.results

(* Static root causes, counted once per cause — the static analogue of
   [causes]. *)
let static_causes t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Verify.Finding.t) ->
      let key = (f.family, f.cause) in
      Hashtbl.replace tbl key
        (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
    (all_static_findings t);
  Hashtbl.fold (fun (family, cause) n acc -> (family, cause, n) :: acc) tbl []
  |> List.sort by_cause_key
