(* Campaign orchestration: the paper's evaluation pipeline (§5).

   A campaign explores every instruction of a compiler's test universe
   with the concolic engine, then runs the differential tests on each
   curated path, on one or both ISAs, and aggregates per-instruction and
   per-compiler statistics — the data behind Table 2, Table 3 and
   Figures 5-7. *)

(* Static-vs-dynamic agreement tallies, one count per path x arch
   verdict (see Difftest.Runner.agreement). *)
type agreement_counts = {
  both_clean : int;
  both_flagged : int;
  static_only : int;
  dynamic_only : int;
}

let no_agreements =
  { both_clean = 0; both_flagged = 0; static_only = 0; dynamic_only = 0 }

let add_agreement counts = function
  | Difftest.Runner.Both_clean -> { counts with both_clean = counts.both_clean + 1 }
  | Difftest.Runner.Both_flagged ->
      { counts with both_flagged = counts.both_flagged + 1 }
  | Difftest.Runner.Static_only ->
      { counts with static_only = counts.static_only + 1 }
  | Difftest.Runner.Dynamic_only ->
      { counts with dynamic_only = counts.dynamic_only + 1 }

let sum_agreements a b =
  {
    both_clean = a.both_clean + b.both_clean;
    both_flagged = a.both_flagged + b.both_flagged;
    static_only = a.static_only + b.static_only;
    dynamic_only = a.dynamic_only + b.dynamic_only;
  }

(* Translation-validation tallies, one count per path x arch verdict
   (see Difftest.Runner.validation), plus the solver queries spent. *)
type validation_counts = {
  proved : int;
  refuted : int;
  missing : int;
      (* the subset of [refuted] whose witness is an absent template
         ("not compiled"): real divergences, but expected ones *)
  spurious : int;
  unknown : int;
  skipped : int;
  queries : int;
}

let no_validations =
  {
    proved = 0;
    refuted = 0;
    missing = 0;
    spurious = 0;
    unknown = 0;
    skipped = 0;
    queries = 0;
  }

let add_validation counts = function
  | Difftest.Runner.V_proved -> { counts with proved = counts.proved + 1 }
  | Difftest.Runner.V_refuted { witness; _ } ->
      let counts = { counts with refuted = counts.refuted + 1 } in
      if witness.Verify.Translation_validator.missing then
        { counts with missing = counts.missing + 1 }
      else counts
  | Difftest.Runner.V_spurious _ ->
      { counts with spurious = counts.spurious + 1 }
  | Difftest.Runner.V_unknown _ -> { counts with unknown = counts.unknown + 1 }
  | Difftest.Runner.V_skipped _ -> { counts with skipped = counts.skipped + 1 }

let sum_validations a b =
  {
    proved = a.proved + b.proved;
    refuted = a.refuted + b.refuted;
    missing = a.missing + b.missing;
    spurious = a.spurious + b.spurious;
    unknown = a.unknown + b.unknown;
    skipped = a.skipped + b.skipped;
    queries = a.queries + b.queries;
  }

type instruction_result = {
  subject : Concolic.Path.subject;
  paths : int; (* interpreter paths discovered *)
  curated : int; (* paths the tester could re-create and execute *)
  differences : int; (* paths that differ between engines *)
  unsupported : bool;
  explore_time : float; (* seconds of concolic exploration *)
  test_time : float; (* seconds running the generated tests *)
  diffs : Difftest.Difference.t list;
      (* witnesses deduplicated by root cause (Classify.dedupe_witnesses) *)
  static_findings : Verify.Finding.t list;
      (* the unit's static verdict, deduplicated across paths *)
  agreements : agreement_counts;
  validations : (Jit.Codegen.arch * validation_counts) list;
      (* per-ISA translation-validation tallies; [] unless ~validate *)
}

type compiler_result = {
  compiler : Jit.Cogits.compiler;
  instructions : instruction_result list;
}

type t = {
  defects : Interpreter.Defects.t;
  arches : Jit.Codegen.arch list;
  results : compiler_result list;
}

(* The test universes (§5.1): the native-method compiler is tested on the
   112 native methods; the three byte-code compilers on the byte-code
   set, minus the instructions the tester does not support (§4.3). *)
let native_subjects () =
  List.map (fun id -> Concolic.Path.Native id) Interpreter.Primitive_table.ids

let bytecode_subjects () =
  Bytecodes.Encoding.all_defined_opcodes ()
  |> List.filter (fun op -> op <> Bytecodes.Opcode.Push_this_context)
  |> List.map (fun op -> Concolic.Path.Bytecode op)

let subjects_for = function
  | Jit.Cogits.Native_method_compiler -> native_subjects ()
  | _ -> bytecode_subjects ()

(* Monotonic, not [Unix.gettimeofday]: phase walls and watchdog
   deadlines must survive NTP steps. *)
let time f =
  let t0 = Exec.Clock.now () in
  let r = f () in
  (r, Exec.Clock.elapsed t0)

(* Explore one instruction and run its differential tests against one
   compiler on the given architectures.  A path counts as ONE difference
   if it differs on any architecture (the paper's per-path counting).
   With [validate], pass 5 (solver-backed translation validation) runs
   on every path x arch and its verdicts are tallied per ISA. *)
let test_instruction ?(max_iterations = 96) ?(validate = false) ?budget
    ~defects ~arches ~compiler subject : instruction_result =
  let exploration, explore_time =
    time (fun () -> Concolic.Explorer.explore ~max_iterations ~defects subject)
  in
  if exploration.unsupported then
    {
      subject;
      paths = 0;
      curated = 0;
      differences = 0;
      unsupported = true;
      explore_time;
      test_time = 0.0;
      diffs = [];
      static_findings = [];
      agreements = no_agreements;
      validations = [];
    }
  else begin
    let results, test_time =
      time (fun () ->
          List.map
            (fun path ->
              let verdicts =
                List.map
                  (fun arch ->
                    (* count the queries this domain's work spent, not a
                       global delta — concurrent units would otherwise
                       bleed into each other's tallies *)
                    let v, spent =
                      Verify.Translation_validator.with_query_count (fun () ->
                          Difftest.Runner.run_path_verified ~validate ?budget
                            ~defects ~compiler ~arch path)
                    in
                    (arch, v, spent))
                  arches
              in
              (path, verdicts))
            exploration.paths)
    in
    let outcomes_of verdicts =
      List.map (fun (_, (v : Difftest.Runner.verified), _) -> v.outcome) verdicts
    in
    let curated =
      List.length
        (List.filter
           (fun (_, verdicts) ->
             List.for_all
               (function Difftest.Runner.Curated_out _ -> false | _ -> true)
               (outcomes_of verdicts))
           results)
    in
    (* per-path differences (the paper's Table 2 counting) ... *)
    let path_diffs =
      List.filter_map
        (fun (_, verdicts) ->
          List.find_map
            (function Difftest.Runner.Diff d -> Some d | _ -> None)
            (outcomes_of verdicts))
        results
    in
    (* ... but the reported witness list is deduplicated by root cause
       (§5.3: "a defect only once") *)
    let diffs = Difftest.Classify.dedupe_witnesses path_diffs in
    let agreements =
      List.fold_left
        (fun acc (_, verdicts) ->
          List.fold_left
            (fun acc (_, (v : Difftest.Runner.verified), _) ->
              add_agreement acc v.agreement)
            acc verdicts)
        no_agreements results
    in
    let validations =
      if not validate then []
      else
        List.map
          (fun arch ->
            let counts =
              List.fold_left
                (fun acc (_, verdicts) ->
                  List.fold_left
                    (fun acc (a, (v : Difftest.Runner.verified), spent) ->
                      if a <> arch then acc
                      else
                        let acc = { acc with queries = acc.queries + spent } in
                        match v.validation with
                        | None -> acc
                        | Some vv -> add_validation acc vv)
                    acc verdicts)
                no_validations results
            in
            (arch, counts))
          arches
    in
    (* the verdict is per (subject, compiler, arch); dedupe across
       paths.  The static cross-ISA differ contributes its pair-labelled
       findings on top, one run over the whole arch set. *)
    let static_findings =
      List.concat_map
        (fun arch ->
          Difftest.Runner.static_findings ~defects ~compiler ~arch subject)
        arches
      @ Difftest.Runner.cross_isa_findings ~defects ~compiler ~arches subject
      |> List.sort_uniq compare
    in
    {
      subject;
      paths = List.length exploration.paths;
      curated;
      differences = List.length path_diffs;
      unsupported = false;
      explore_time;
      test_time;
      diffs;
      static_findings;
      agreements;
      validations;
    }
  end

(* The parallel fan-out primitive: every (compiler, subject) pair is an
   independent job.  [Exec.Pool.map] deals jobs to domains but merges
   results by the unit's position in [units], so the output — and every
   table or JSON report derived from it — is identical at any [jobs].
   Each unit runs entirely on one domain, which is what makes the
   per-unit query counts ([with_query_count]) exact.

   Note on [budget]: the shared ref is decremented from several domains
   without synchronisation.  Lost decrements only let a few extra
   queries through before exhaustion, degrading some verdicts to
   [Unknown] — never changing a Proved/Refuted answer — so budgeted runs
   trade exact reproducibility for the cap, exactly as a budgeted
   sequential run already trades it across orderings.  Unbudgeted runs
   are fully deterministic. *)
let run_units ?jobs ?(max_iterations = 96) ?(validate = false) ?budget
    ~defects ~arches
    (units : (Jit.Cogits.compiler * Concolic.Path.subject) list) :
    (Jit.Cogits.compiler * instruction_result) list =
  Exec.Pool.map ?jobs
    (fun (compiler, subject) ->
      ( compiler,
        test_instruction ~max_iterations ~validate ?budget ~defects ~arches
          ~compiler subject ))
    units

let units_for compilers =
  List.concat_map
    (fun compiler ->
      List.map (fun subject -> (compiler, subject)) (subjects_for compiler))
    compilers

let run_compiler ?jobs ?(max_iterations = 96) ?(validate = false) ?budget
    ~defects ~arches compiler : compiler_result =
  let instructions =
    List.map snd
      (run_units ?jobs ~max_iterations ~validate ?budget ~defects ~arches
         (units_for [ compiler ]))
  in
  { compiler; instructions }

let run ?jobs ?(max_iterations = 96) ?(validate = false) ?budget
    ?(defects = Interpreter.Defects.paper)
    ?(arches = Jit.Codegen.all_arches)
    ?(compilers = Jit.Cogits.all) () : t =
  (* fan all compilers' units into one pool, then regroup: the last
     compiler's jobs overlap the first's drain instead of idling *)
  let flat =
    run_units ?jobs ~max_iterations ~validate ?budget ~defects ~arches
      (units_for compilers)
  in
  {
    defects;
    arches;
    results =
      List.map
        (fun compiler ->
          {
            compiler;
            instructions =
              List.filter_map
                (fun (c, r) -> if c = compiler then Some r else None)
                flat;
          })
        compilers;
  }

(* --- supervised runs (fault-tolerant campaign engine) ---

   Same universe, same per-unit work as [run], but every unit goes
   through [Exec.Supervise]: a crash or an exhausted watchdog budget
   costs exactly that unit (a recorded verdict) instead of the run, and
   a journal makes the run resumable.  The campaign [t] is assembled
   from the [Ok] units only; the verdict bookkeeping rides alongside. *)

type unit_report = {
  ur_key : string; (* "compiler|subject" (mutate: "op|compiler|subject|arch") *)
  ur_verdict : string; (* Exec.Supervise.verdict_name *)
  ur_detail : string;
  ur_attempts : int;
}

type supervised = {
  sup_campaign : t;
  sup_units : unit_report list; (* every unit, stable input order *)
  sup_by_compiler : (Jit.Cogits.compiler * Exec.Supervise.counts) list;
  sup_totals : Exec.Supervise.counts;
  sup_chaos : (int * string * string) list;
      (* injected faults: unit index, unit key, kind name *)
}

let sup_incidents s =
  List.filter (fun u -> u.ur_verdict <> "ok") s.sup_units

let unit_key (compiler, subject) =
  Jit.Cogits.short_name compiler ^ "|" ^ Concolic.Path.subject_name subject

(* Configuration fingerprint for journals: resuming under different
   defects/arches/iterations would merge incomparable results, so the
   loader rejects a journal whose fingerprint differs. *)
let journal_config ~mode ~defects ~arches ~max_iterations ~validate =
  Printf.sprintf "%s|defects:%d|arches:%s|iters:%d|validate:%b" mode
    (Hashtbl.hash defects)
    (String.concat "," (List.map Jit.Codegen.arch_name arches))
    max_iterations validate

(* Open a journal sink, writing the header only when the file is new or
   empty — appending to a half-written journal keeps its header, which
   is what lets [--journal F --resume F] continue a killed run. *)
let open_journal ~config file =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file in
  if out_channel_length oc = 0 then Exec.Journal.write_header oc ~config;
  oc

let report_of_outcome key (o : _ Exec.Supervise.outcome) =
  {
    ur_key = key;
    ur_verdict = Exec.Supervise.verdict_name o.verdict;
    ur_detail = Exec.Supervise.verdict_detail o.verdict;
    ur_attempts = o.attempts;
  }

let run_supervised ?jobs ?(max_iterations = 96) ?(validate = false) ?budget
    ?(policy = Exec.Supervise.default_policy) ?chaos ?journal ?resume
    ?(defects = Interpreter.Defects.paper) ?(arches = Jit.Codegen.all_arches)
    ?(compilers = Jit.Cogits.all) ?units:units_override () : supervised =
  let units =
    Array.of_list
      (match units_override with Some u -> u | None -> units_for compilers)
  in
  let n = Array.length units in
  let config = journal_config ~mode:"campaign" ~defects ~arches ~max_iterations ~validate in
  let plan =
    Option.map (fun (seed, faults) -> Exec.Chaos.plan ~seed ~faults ~units:n) chaos
  in
  let chaos_fn =
    match plan with None -> fun _ -> None | Some p -> Exec.Chaos.kind_of p
  in
  let precomputed =
    Option.map
      (fun file ->
        let tbl = Exec.Journal.load ~config file in
        fun i ->
          match Hashtbl.find_opt tbl (unit_key units.(i)) with
          | None -> None
          | Some (e : Exec.Journal.entry) ->
              let verdict =
                match e.status with
                | Exec.Journal.Ok ->
                    Exec.Supervise.Ok
                      (Marshal.from_string e.payload 0 : instruction_result)
                | Exec.Journal.Timed_out -> Exec.Supervise.Timed_out e.detail
                | Exec.Journal.Crashed ->
                    Exec.Supervise.Unit_crashed { exn = e.detail; backtrace = "" }
              in
              Some { Exec.Supervise.verdict; attempts = e.attempts })
      resume
  in
  let sink = Option.map (open_journal ~config) journal in
  let record =
    Option.map
      (fun oc i (o : instruction_result Exec.Supervise.outcome) ->
        let entry =
          match o.Exec.Supervise.verdict with
          | Exec.Supervise.Ok r ->
              {
                Exec.Journal.key = unit_key units.(i);
                status = Exec.Journal.Ok;
                attempts = o.attempts;
                detail = "";
                payload = Marshal.to_string r [];
              }
          | Exec.Supervise.Timed_out reason ->
              {
                Exec.Journal.key = unit_key units.(i);
                status = Exec.Journal.Timed_out;
                attempts = o.attempts;
                detail = reason;
                payload = "";
              }
          | Exec.Supervise.Unit_crashed f ->
              {
                Exec.Journal.key = unit_key units.(i);
                status = Exec.Journal.Crashed;
                attempts = o.attempts;
                detail = f.exn;
                payload = "";
              }
          | Exec.Supervise.Quarantined _ -> assert false (* never recorded *)
        in
        Exec.Journal.append oc entry)
      sink
  in
  let outcomes =
    Fun.protect
      ~finally:(fun () -> Option.iter close_out_noerr sink)
      (fun () ->
        Exec.Supervise.run ?jobs ~policy ~chaos:chaos_fn ?precomputed ?record
          ~group:(fun (c, _) -> Jit.Cogits.short_name c)
          (fun (compiler, subject) ->
            test_instruction ~max_iterations ~validate ?budget ~defects ~arches
              ~compiler subject)
          units)
  in
  let indices_of compiler =
    List.filter
      (fun i -> fst units.(i) = compiler)
      (List.init n Fun.id)
  in
  let results =
    List.map
      (fun compiler ->
        {
          compiler;
          instructions =
            List.filter_map
              (fun i ->
                match outcomes.(i).Exec.Supervise.verdict with
                | Exec.Supervise.Ok r -> Some r
                | _ -> None)
              (indices_of compiler);
        })
      compilers
  in
  {
    sup_campaign = { defects; arches; results };
    sup_units =
      List.init n (fun i -> report_of_outcome (unit_key units.(i)) outcomes.(i));
    sup_by_compiler =
      List.map
        (fun compiler ->
          ( compiler,
            Exec.Supervise.tally
              (Array.of_list (List.map (fun i -> outcomes.(i)) (indices_of compiler)))
          ))
        compilers;
    sup_totals = Exec.Supervise.tally outcomes;
    sup_chaos =
      (match plan with
      | None -> []
      | Some p ->
          List.map
            (fun (i, k) -> (i, unit_key units.(i), Exec.Chaos.kind_name k))
            p.Exec.Chaos.targets);
  }

(* --- aggregations --- *)

let tested_instructions cr =
  List.length (List.filter (fun r -> not r.unsupported) cr.instructions)

let total_paths cr =
  List.fold_left (fun acc r -> acc + r.paths) 0 cr.instructions

let total_curated cr =
  List.fold_left (fun acc r -> acc + r.curated) 0 cr.instructions

let total_differences cr =
  List.fold_left (fun acc r -> acc + r.differences) 0 cr.instructions

let all_diffs t =
  List.concat_map (fun cr -> List.concat_map (fun r -> r.diffs) cr.instructions) t.results

(* Stable ordering for cause tallies: the hash tables accumulate in
   whatever order iteration finds the buckets, so every tally list is
   sorted by its (family, cause) key before it escapes — run-to-run and
   [-j]-independent output depends on it. *)
let by_cause_key (f1, c1, _) (f2, c2, _) = compare (f1, c1) (f2, c2)

(* Root causes, counted once per cause (paper §5.3). *)
let causes t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (d : Difftest.Difference.t) ->
      let key = (d.family, d.cause) in
      Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
    (all_diffs t);
  Hashtbl.fold (fun (family, cause) n acc -> (family, cause, n) :: acc) tbl []
  |> List.sort by_cause_key

let causes_by_family t =
  List.map
    (fun family ->
      let n =
        List.length (List.filter (fun (f, _, _) -> f = family) (causes t))
      in
      (family, n))
    Difftest.Difference.all_families

(* --- static-verifier aggregations --- *)

let agreement_totals t =
  List.fold_left
    (fun acc cr ->
      List.fold_left
        (fun acc r -> sum_agreements acc r.agreements)
        acc cr.instructions)
    no_agreements t.results

let all_static_findings t =
  List.concat_map
    (fun cr -> List.concat_map (fun r -> r.static_findings) cr.instructions)
    t.results

(* --- cross-ISA divergence aggregation ---

   The static cross-ISA differ labels each finding with its ISA pair
   ("x86+rv32") in the arch field; tally them per (front-end x pair),
   with an explicit zero row for every pair of the campaign's arch set
   so the table shape is stable. *)

let arch_pair_labels (arches : Jit.Codegen.arch list) : string list =
  let names = List.map Jit.Codegen.arch_name arches in
  let rec go = function
    | [] -> []
    | a :: rest -> List.map (fun b -> a ^ "+" ^ b) rest @ go rest
  in
  go names

let cross_isa_divergences t : (string * (string * int) list) list =
  let pairs = arch_pair_labels t.arches in
  List.map
    (fun cr ->
      let short = Jit.Cogits.short_name cr.compiler in
      let count pair =
        List.fold_left
          (fun acc r ->
            acc
            + List.length
                (List.filter
                   (fun (f : Verify.Finding.t) ->
                     f.arch = pair
                     && String.length f.cause >= 9
                     && String.sub f.cause 0 9 = "cross-isa")
                   r.static_findings))
          0 cr.instructions
      in
      (short, List.map (fun p -> (p, count p)) pairs))
    t.results

(* --- translation-validation aggregations --- *)

(* Per-ISA validation tallies for one compiler, summed over its
   instructions (the `vmtest validate' matrix rows). *)
let validation_by_arch cr =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun r ->
      List.iter
        (fun (arch, counts) ->
          match Hashtbl.find_opt tbl arch with
          | None -> Hashtbl.replace tbl arch counts
          | Some prev -> Hashtbl.replace tbl arch (sum_validations prev counts))
        r.validations)
    cr.instructions;
  (* rows in the canonical ISA order, not first-seen order *)
  List.filter_map
    (fun arch ->
      Option.map (fun c -> (arch, c)) (Hashtbl.find_opt tbl arch))
    Jit.Codegen.all_arches

let validation_totals_compiler cr =
  List.fold_left
    (fun acc (_, counts) -> sum_validations acc counts)
    no_validations (validation_by_arch cr)

let validation_totals t =
  List.fold_left
    (fun acc cr -> sum_validations acc (validation_totals_compiler cr))
    no_validations t.results

(* --- mutation kill matrix (oracle-strength evaluation) ---

   Every scheduled unit is one (operator x compiler x subject x ISA)
   mutant.  The unit runs twice through the full oracle stack — once
   pristine (memoized across mutants sharing the unit), once with the
   fault armed — and the first oracle layer whose verdict moves records
   the kill: static verify, then translation validate, then the
   differential run.  A mutant no layer notices survives. *)

type kill = Killed_static | Killed_validate | Killed_difftest | Survived

let kill_name = function
  | Killed_static -> "static"
  | Killed_validate -> "validate"
  | Killed_difftest -> "difftest"
  | Survived -> "survived"

(* What each oracle layer concluded about one unit, reduced to
   comparable form.  Query counts and times are deliberately absent:
   they vary with cache warmth, not with the compiled code. *)
type oracle_snapshot = {
  o_static : string list; (* rendered findings, sorted *)
  o_validation : (int * int * int * int * int * int) list;
      (* per requested ISA: proved/refuted/missing/spurious/unknown/skipped *)
  o_differences : int; (* per-path difference count *)
  o_diff_causes : (string * string) list; (* (family, cause), sorted *)
}

let snapshot_of (r : instruction_result) : oracle_snapshot =
  {
    o_static =
      List.sort_uniq compare (List.map Verify.Finding.to_string r.static_findings);
    o_validation =
      List.map
        (fun (_, c) ->
          (c.proved, c.refuted, c.missing, c.spurious, c.unknown, c.skipped))
        r.validations;
    o_differences = r.differences;
    o_diff_causes =
      List.sort_uniq compare
        (List.map
           (fun (d : Difftest.Difference.t) ->
             (Difftest.Difference.family_name d.family, d.cause))
           r.diffs);
  }

(* Kill attribution in oracle order: the cheapest layer that notices the
   fault gets the credit, mirroring how a CI pipeline would encounter
   them. *)
let decide ~(baseline : oracle_snapshot) ~(mutant : oracle_snapshot) : kill =
  if baseline.o_static <> mutant.o_static then Killed_static
  else if baseline.o_validation <> mutant.o_validation then Killed_validate
  else if
    baseline.o_differences <> mutant.o_differences
    || baseline.o_diff_causes <> mutant.o_diff_causes
  then Killed_difftest
  else Survived

(* The pristine snapshot per (subject, compiler, ISA, defects) unit,
   computed fault-free and shared across every mutant of that unit; the
   memo's in-flight dedup keeps it to one computation under [-j]. *)
let baseline_memo : (string, oracle_snapshot) Exec.Memo.t =
  Exec.Memo.create ()

let reset_kill_cache () = Exec.Memo.clear baseline_memo

let baseline_snapshot ~max_iterations ~defects ~compiler ~arch subject =
  let key =
    Printf.sprintf "%s|%s|%s|%d|%d"
      (Concolic.Path.subject_name subject)
      (Jit.Cogits.short_name compiler)
      (Jit.Codegen.arch_name arch)
      (Hashtbl.hash defects) max_iterations
  in
  Exec.Memo.find_or_add baseline_memo key (fun _ ->
      snapshot_of
        (test_instruction ~max_iterations ~validate:true ~defects
           ~arches:[ arch ] ~compiler subject))

type mutant_outcome = {
  mo_op : Mutate.operator;
  mo_compiler : Jit.Cogits.compiler;
  mo_subject : Concolic.Path.subject;
  mo_arch : Jit.Codegen.arch;
  mo_fired : bool; (* did the planted rewrite actually apply? *)
  mo_kill : kill;
}

type kill_matrix = {
  km_defects : Interpreter.Defects.t;
  km_pristine : bool;
  km_outcomes : mutant_outcome list; (* units that completed [Ok] *)
  km_robustness : Exec.Supervise.counts;
  km_incidents : unit_report list; (* non-ok units, stable order *)
}

let kill_of_name = function
  | "static" -> Killed_static
  | "validate" -> Killed_validate
  | "difftest" -> Killed_difftest
  | "survived" -> Survived
  | s -> failwith ("unknown kill name " ^ s)

(* Handcrafted register-pressure sequences: deep enough operand stacks
   to force spills out of the allocating front-ends, which no curated
   single-opcode unit and few short generated sequences do.  They keep
   the spill operators ([ir-dead-spill]) schedulable. *)
let stress_subjects () : Concolic.Path.subject list =
  let open Bytecodes.Opcode in
  let rec pushes n = if n = 0 then [] else Push_one :: pushes (n - 1) in
  let rec adds n =
    if n = 0 then [] else Arith_special Sel_add :: adds (n - 1)
  in
  [
    Concolic.Path.Bytecode_seq (pushes 8 @ adds 7);
    Concolic.Path.Bytecode_seq
      (pushes 6 @ [ Dup; Swap ] @ adds 6 @ [ Pop; Push_two ]);
  ]

(* The candidate pool an operator draws its units from: the compiler's
   curated universe, then the stress sequences, then the generated
   methods — a stable order, so selection is deterministic. *)
let candidate_subjects ~gen_subjects compiler =
  match compiler with
  | Jit.Cogits.Native_method_compiler -> native_subjects ()
  | _ -> bytecode_subjects () @ stress_subjects () @ gen_subjects

(* Pick the first [per_operator] subjects per (operator, compiler) whose
   fault fires under compilation AND whose exploration the concolic
   engine supports — a mutant on an unexplorable unit could only ever be
   killed statically, which would understate the dynamic layers. *)
let select_units ~defects ~max_iterations ~per_operator ~gen_subjects
    ~operators ~arches () =
  List.concat_map
    (fun (op : Mutate.operator) ->
      List.concat_map
        (fun compiler ->
          let supported subject =
            let e = Concolic.Explorer.explore ~max_iterations ~defects subject in
            (not e.Concolic.Explorer.unsupported) && e.Concolic.Explorer.paths <> []
          in
          let rec take acc n = function
            | [] -> List.rev acc
            | s :: rest ->
                if n = 0 then List.rev acc
                else if Mutate.applicable ~defects ~compiler op s && supported s
                then take (s :: acc) (n - 1) rest
                else take acc n rest
          in
          take [] per_operator (candidate_subjects ~gen_subjects compiler)
          |> List.concat_map (fun s ->
                 List.map (fun arch -> (op, compiler, s, arch)) arches))
        Jit.Cogits.all)
    operators

(* The kill-matrix campaign.  [pristine] swaps every scheduled operator
   for the identity mutant {!Mutate.pristine}: the same units run under
   an armed-but-inert fault (fresh fault-tagged caches, full oracle
   stack) and must all come back [Survived] — the zero-false-kill
   gate. *)
let kill_matrix ?jobs ?(max_iterations = 96) ?(per_operator = 2) ?(gen = 6)
    ?(seed = 42) ?(pristine = false)
    ?(defects = Interpreter.Defects.pristine)
    ?(arches = Jit.Codegen.all_arches) ?(operators = Mutate.all)
    ?(policy = Exec.Supervise.default_policy) ?journal ?resume () :
    kill_matrix =
  let gen_subjects = Mutate.Gen_method.subjects ~seed gen in
  let units =
    Array.of_list
      (select_units ~defects ~max_iterations ~per_operator ~gen_subjects
         ~operators ~arches ())
  in
  let n = Array.length units in
  let mutant_key (op, compiler, subject, arch) =
    Printf.sprintf "%s|%s|%s" op.Jit.Fault.id
      (unit_key (compiler, subject))
      (Jit.Codegen.arch_name arch)
  in
  let config =
    journal_config
      ~mode:
        (Printf.sprintf "mutate|pristine:%b|per:%d|gen:%d|seed:%d" pristine
           per_operator gen seed)
      ~defects ~arches ~max_iterations ~validate:true
  in
  (* [Mutate.operator] holds closures, so journalled payloads carry the
     decided (fired, kill) pair rather than a marshalled outcome; the
     rest of the record is rebuilt from the unit tuple on resume. *)
  let precomputed =
    Option.map
      (fun file ->
        let tbl = Exec.Journal.load ~config file in
        fun i ->
          match Hashtbl.find_opt tbl (mutant_key units.(i)) with
          | None -> None
          | Some (e : Exec.Journal.entry) ->
              let verdict =
                match e.status with
                | Exec.Journal.Ok ->
                    let op, compiler, subject, arch = units.(i) in
                    let fired, kill =
                      match String.index_opt e.payload '|' with
                      | Some cut ->
                          ( bool_of_string (String.sub e.payload 0 cut),
                            kill_of_name
                              (String.sub e.payload (cut + 1)
                                 (String.length e.payload - cut - 1)) )
                      | None -> failwith "malformed mutate payload"
                    in
                    Exec.Supervise.Ok
                      {
                        mo_op = op;
                        mo_compiler = compiler;
                        mo_subject = subject;
                        mo_arch = arch;
                        mo_fired = fired;
                        mo_kill = kill;
                      }
                | Exec.Journal.Timed_out -> Exec.Supervise.Timed_out e.detail
                | Exec.Journal.Crashed ->
                    Exec.Supervise.Unit_crashed { exn = e.detail; backtrace = "" }
              in
              Some { Exec.Supervise.verdict; attempts = e.attempts })
      resume
  in
  let sink = Option.map (open_journal ~config) journal in
  let record =
    Option.map
      (fun oc i (o : mutant_outcome Exec.Supervise.outcome) ->
        let entry =
          match o.Exec.Supervise.verdict with
          | Exec.Supervise.Ok mo ->
              {
                Exec.Journal.key = mutant_key units.(i);
                status = Exec.Journal.Ok;
                attempts = o.attempts;
                detail = "";
                payload =
                  Printf.sprintf "%b|%s" mo.mo_fired (kill_name mo.mo_kill);
              }
          | Exec.Supervise.Timed_out reason ->
              {
                Exec.Journal.key = mutant_key units.(i);
                status = Exec.Journal.Timed_out;
                attempts = o.attempts;
                detail = reason;
                payload = "";
              }
          | Exec.Supervise.Unit_crashed f ->
              {
                Exec.Journal.key = mutant_key units.(i);
                status = Exec.Journal.Crashed;
                attempts = o.attempts;
                detail = f.exn;
                payload = "";
              }
          | Exec.Supervise.Quarantined _ -> assert false (* never recorded *)
        in
        Exec.Journal.append oc entry)
      sink
  in
  let outcomes =
    Fun.protect
      ~finally:(fun () -> Option.iter close_out_noerr sink)
      (fun () ->
        Exec.Supervise.run ?jobs ~policy ?precomputed ?record
          ~group:(fun (_, compiler, _, _) -> Jit.Cogits.short_name compiler)
          (fun (op, compiler, subject, arch) ->
            let baseline =
              baseline_snapshot ~max_iterations ~defects ~compiler ~arch subject
            in
            let run_op = if pristine then Mutate.pristine else op in
            let snap, fired =
              Jit.Fault.with_fault
                ~target:(Jit.Cogits.short_name compiler)
                run_op
                (fun () ->
                  snapshot_of
                    (test_instruction ~max_iterations ~validate:true ~defects
                       ~arches:[ arch ] ~compiler subject))
            in
            {
              mo_op = op;
              mo_compiler = compiler;
              mo_subject = subject;
              mo_arch = arch;
              mo_fired = fired;
              mo_kill = decide ~baseline ~mutant:snap;
            })
          units)
  in
  let ok_outcomes =
    List.filter_map
      (fun (o : mutant_outcome Exec.Supervise.outcome) ->
        match o.verdict with Exec.Supervise.Ok mo -> Some mo | _ -> None)
      (Array.to_list outcomes)
  in
  let incidents =
    List.filter
      (fun u -> u.ur_verdict <> "ok")
      (List.init n (fun i -> report_of_outcome (mutant_key units.(i)) outcomes.(i)))
  in
  {
    km_defects = defects;
    km_pristine = pristine;
    km_outcomes = ok_outcomes;
    km_robustness = Exec.Supervise.tally outcomes;
    km_incidents = incidents;
  }

(* --- kill-matrix aggregations --- *)

type kill_row = {
  kr_label : string; (* operator id, layer name, or "total" *)
  kr_layer : string;
  kr_units : int;
  kr_static : int;
  kr_validate : int;
  kr_difftest : int;
  kr_survived : int;
}

let kill_rate (r : kill_row) : float =
  if r.kr_units = 0 then 0.0
  else
    float_of_int (r.kr_static + r.kr_validate + r.kr_difftest)
    /. float_of_int r.kr_units

let row_of ~label ~layer outcomes =
  let count k = List.length (List.filter (fun o -> o.mo_kill = k) outcomes) in
  {
    kr_label = label;
    kr_layer = layer;
    kr_units = List.length outcomes;
    kr_static = count Killed_static;
    kr_validate = count Killed_validate;
    kr_difftest = count Killed_difftest;
    kr_survived = count Survived;
  }

(* One row per operator, in {!Mutate.all} order, operators with no
   scheduled unit omitted. *)
let kills_by_operator (m : kill_matrix) : kill_row list =
  List.filter_map
    (fun (op : Mutate.operator) ->
      match List.filter (fun o -> o.mo_op.Jit.Fault.id = op.id) m.km_outcomes with
      | [] -> None
      | outcomes ->
          Some
            (row_of ~label:op.id
               ~layer:(Jit.Fault.layer_name op.layer)
               outcomes))
    Mutate.all

let kills_by_layer (m : kill_matrix) : kill_row list =
  List.filter_map
    (fun layer ->
      match
        List.filter
          (fun o -> o.mo_op.Jit.Fault.layer = layer)
          m.km_outcomes
      with
      | [] -> None
      | outcomes ->
          let name = Jit.Fault.layer_name layer in
          Some (row_of ~label:name ~layer:name outcomes))
    [ Jit.Fault.L_template; Jit.Fault.L_ir; Jit.Fault.L_machine ]

let kill_totals (m : kill_matrix) : kill_row =
  row_of ~label:"total" ~layer:"-" m.km_outcomes

let surviving_mutants (m : kill_matrix) : mutant_outcome list =
  List.filter (fun o -> o.mo_kill = Survived) m.km_outcomes

let false_kills (m : kill_matrix) : mutant_outcome list =
  if not m.km_pristine then []
  else List.filter (fun o -> o.mo_kill <> Survived) m.km_outcomes

(* Static root causes, counted once per cause — the static analogue of
   [causes]. *)
let static_causes t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Verify.Finding.t) ->
      let key = (f.family, f.cause) in
      Hashtbl.replace tbl key
        (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
    (all_static_findings t);
  Hashtbl.fold (fun (family, cause) n acc -> (family, cause, n) :: acc) tbl []
  |> List.sort by_cause_key

(* Findings per static pass — how much of the static oracle surface each
   pass (bytecode / ir / machine / abstract / differ) contributes. *)
let static_pass_counts t : (string * int) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (f : Verify.Finding.t) ->
      let key = Verify.Finding.pass_name f.pass in
      Hashtbl.replace tbl key
        (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
    (all_static_findings t);
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [] |> List.sort compare
