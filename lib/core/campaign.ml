(* Campaign orchestration: the paper's evaluation pipeline (§5).

   A campaign explores every instruction of a compiler's test universe
   with the concolic engine, then runs the differential tests on each
   curated path, on one or both ISAs, and aggregates per-instruction and
   per-compiler statistics — the data behind Table 2, Table 3 and
   Figures 5-7. *)

(* Static-vs-dynamic agreement tallies, one count per path x arch
   verdict (see Difftest.Runner.agreement). *)
type agreement_counts = {
  both_clean : int;
  both_flagged : int;
  static_only : int;
  dynamic_only : int;
}

let no_agreements =
  { both_clean = 0; both_flagged = 0; static_only = 0; dynamic_only = 0 }

let add_agreement counts = function
  | Difftest.Runner.Both_clean -> { counts with both_clean = counts.both_clean + 1 }
  | Difftest.Runner.Both_flagged ->
      { counts with both_flagged = counts.both_flagged + 1 }
  | Difftest.Runner.Static_only ->
      { counts with static_only = counts.static_only + 1 }
  | Difftest.Runner.Dynamic_only ->
      { counts with dynamic_only = counts.dynamic_only + 1 }

let sum_agreements a b =
  {
    both_clean = a.both_clean + b.both_clean;
    both_flagged = a.both_flagged + b.both_flagged;
    static_only = a.static_only + b.static_only;
    dynamic_only = a.dynamic_only + b.dynamic_only;
  }

type instruction_result = {
  subject : Concolic.Path.subject;
  paths : int; (* interpreter paths discovered *)
  curated : int; (* paths the tester could re-create and execute *)
  differences : int; (* paths that differ between engines *)
  unsupported : bool;
  explore_time : float; (* seconds of concolic exploration *)
  test_time : float; (* seconds running the generated tests *)
  diffs : Difftest.Difference.t list;
  static_findings : Verify.Finding.t list;
      (* the unit's static verdict, deduplicated across paths *)
  agreements : agreement_counts;
}

type compiler_result = {
  compiler : Jit.Cogits.compiler;
  instructions : instruction_result list;
}

type t = {
  defects : Interpreter.Defects.t;
  arches : Jit.Codegen.arch list;
  results : compiler_result list;
}

(* The test universes (§5.1): the native-method compiler is tested on the
   112 native methods; the three byte-code compilers on the byte-code
   set, minus the instructions the tester does not support (§4.3). *)
let native_subjects () =
  List.map (fun id -> Concolic.Path.Native id) Interpreter.Primitive_table.ids

let bytecode_subjects () =
  Bytecodes.Encoding.all_defined_opcodes ()
  |> List.filter (fun op -> op <> Bytecodes.Opcode.Push_this_context)
  |> List.map (fun op -> Concolic.Path.Bytecode op)

let subjects_for = function
  | Jit.Cogits.Native_method_compiler -> native_subjects ()
  | _ -> bytecode_subjects ()

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Explore one instruction and run its differential tests against one
   compiler on the given architectures.  A path counts as ONE difference
   if it differs on any architecture (the paper's per-path counting). *)
let test_instruction ?(max_iterations = 96) ~defects ~arches ~compiler subject
    : instruction_result =
  let exploration, explore_time =
    time (fun () -> Concolic.Explorer.explore ~max_iterations ~defects subject)
  in
  if exploration.unsupported then
    {
      subject;
      paths = 0;
      curated = 0;
      differences = 0;
      unsupported = true;
      explore_time;
      test_time = 0.0;
      diffs = [];
      static_findings = [];
      agreements = no_agreements;
    }
  else begin
    let results, test_time =
      time (fun () ->
          List.map
            (fun path ->
              let verdicts =
                List.map
                  (fun arch ->
                    Difftest.Runner.run_path_verified ~defects ~compiler ~arch
                      path)
                  arches
              in
              (path, verdicts))
            exploration.paths)
    in
    let outcomes_of verdicts =
      List.map (fun (v : Difftest.Runner.verified) -> v.outcome) verdicts
    in
    let curated =
      List.length
        (List.filter
           (fun (_, verdicts) ->
             List.for_all
               (function Difftest.Runner.Curated_out _ -> false | _ -> true)
               (outcomes_of verdicts))
           results)
    in
    let diffs =
      List.filter_map
        (fun (_, verdicts) ->
          List.find_map
            (function Difftest.Runner.Diff d -> Some d | _ -> None)
            (outcomes_of verdicts))
        results
    in
    let agreements =
      List.fold_left
        (fun acc (_, verdicts) ->
          List.fold_left
            (fun acc (v : Difftest.Runner.verified) ->
              add_agreement acc v.agreement)
            acc verdicts)
        no_agreements results
    in
    (* the verdict is per (subject, compiler, arch); dedupe across paths *)
    let static_findings =
      List.concat_map
        (fun arch ->
          Difftest.Runner.static_findings ~defects ~compiler ~arch subject)
        arches
      |> List.sort_uniq compare
    in
    {
      subject;
      paths = List.length exploration.paths;
      curated;
      differences = List.length diffs;
      unsupported = false;
      explore_time;
      test_time;
      diffs;
      static_findings;
      agreements;
    }
  end

let run_compiler ?(max_iterations = 96) ~defects ~arches compiler :
    compiler_result =
  let instructions =
    List.map
      (fun subject -> test_instruction ~max_iterations ~defects ~arches ~compiler subject)
      (subjects_for compiler)
  in
  { compiler; instructions }

let run ?(max_iterations = 96) ?(defects = Interpreter.Defects.paper)
    ?(arches = Jit.Codegen.all_arches)
    ?(compilers = Jit.Cogits.all) () : t =
  {
    defects;
    arches;
    results = List.map (run_compiler ~max_iterations ~defects ~arches) compilers;
  }

(* --- aggregations --- *)

let tested_instructions cr =
  List.length (List.filter (fun r -> not r.unsupported) cr.instructions)

let total_paths cr =
  List.fold_left (fun acc r -> acc + r.paths) 0 cr.instructions

let total_curated cr =
  List.fold_left (fun acc r -> acc + r.curated) 0 cr.instructions

let total_differences cr =
  List.fold_left (fun acc r -> acc + r.differences) 0 cr.instructions

let all_diffs t =
  List.concat_map (fun cr -> List.concat_map (fun r -> r.diffs) cr.instructions) t.results

(* Root causes, counted once per cause (paper §5.3). *)
let causes t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (d : Difftest.Difference.t) ->
      let key = (d.family, d.cause) in
      Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
    (all_diffs t);
  Hashtbl.fold (fun (family, cause) n acc -> (family, cause, n) :: acc) tbl []
  |> List.sort compare

let causes_by_family t =
  List.map
    (fun family ->
      let n =
        List.length (List.filter (fun (f, _, _) -> f = family) (causes t))
      in
      (family, n))
    Difftest.Difference.all_families

(* --- static-verifier aggregations --- *)

let agreement_totals t =
  List.fold_left
    (fun acc cr ->
      List.fold_left
        (fun acc r -> sum_agreements acc r.agreements)
        acc cr.instructions)
    no_agreements t.results

let all_static_findings t =
  List.concat_map
    (fun cr -> List.concat_map (fun r -> r.static_findings) cr.instructions)
    t.results

(* Static root causes, counted once per cause — the static analogue of
   [causes]. *)
let static_causes t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Verify.Finding.t) ->
      let key = (f.family, f.cause) in
      Hashtbl.replace tbl key
        (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
    (all_static_findings t);
  Hashtbl.fold (fun (family, cause) n acc -> (family, cause, n) :: acc) tbl []
  |> List.sort compare
