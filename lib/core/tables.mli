(** Rendering of the paper's tables and figures from campaign data:
    Table 1 (add byte-code paths), Table 2 (per-compiler results),
    Table 3 (defect families), and the statistics behind Figures 5-7. *)

val table1 : Format.formatter -> unit -> unit
(** Explore the add byte-code and print its paths (Table 1). *)

type table2_row = {
  compiler : string;
  tested : int;
  paths : int;
  curated : int;
  differences : int;
}

val table2_rows : Campaign.t -> table2_row list
(** The data rows (including the total row), for programmatic use. *)

val table2 : Format.formatter -> Campaign.t -> unit
val table3 : Format.formatter -> Campaign.t -> unit
val causes : Format.formatter -> Campaign.t -> unit
(** The full root-cause listing with affected-path counts. *)

val validation_table : Format.formatter -> Campaign.t -> unit
(** The per-compiler x per-ISA translation-validation verdict matrix
    (proved / refuted / spurious / unknown / skipped, solver queries,
    and the headline unknown rate).  Meaningful only for campaigns run
    with [~validate:true]. *)

val supervision_table : Format.formatter -> Campaign.supervised -> unit
(** Per-compiler verdict counts under the fault-tolerant engine
    (ok / timed out / crashed / quarantined / retries), the individual
    non-ok incidents, and the chaos schedule when one was injected. *)

val abstract_table : Format.formatter -> Verify.abstract_report -> unit
(** The abstract-interpretation sweep summary: unit / program / path
    counters, the symexec cross-check coverage, and the per-cause
    finding counts of the machine-layer abstract pass. *)

val cross_isa_table : Format.formatter -> Campaign.t -> unit
(** The per-(front-end x ISA-pair) static cross-ISA divergence matrix:
    one row per compiler, one column per unordered ISA pair
    ("x86+arm32", "x86+rv32", "arm32+rv32"), counting the campaign's
    cross-ISA differ findings.  All-zero on both the pristine and the
    paper-seeded configurations — the seeded defects do not perturb the
    lowerings. *)

val kill_table : Format.formatter -> Campaign.kill_matrix -> unit
(** The mutation kill matrix: per-operator and per-layer rows of which
    oracle layer (static / validate / difftest) killed each mutant,
    kill rates, surviving mutants (or, for a pristine run, the
    false-kill gate line).  A supervision summary and incident lines
    follow whenever the run had any non-ok unit or retry. *)

val corpus_table :
  Format.formatter ->
  curated:Templates.Corpus.coverage ->
  extracted:Templates.Corpus.coverage ->
  kills:(string * bool * bool) list ->
  unit
(** The extracted-vs-curated comparison (ROADMAP item 3): subject,
    path, distinct-path-summary and fingerprint counts side by side,
    the per-exit-condition path mix, and — when [kills] is non-empty —
    one row per operator with [(id, killed on curated, killed on
    extracted)], flagging any operator the extracted corpus loses. *)

type stats = {
  n : int;
  mean : float;
  median : float;
  min : float;
  max : float;
}

val stats_of : float list -> stats

val figure5 : Format.formatter -> Campaign.t -> unit
(** Paths per instruction, byte-codes vs native methods. *)

val figure6 : Format.formatter -> Campaign.t -> unit
(** Concolic exploration time per instruction kind. *)

val figure7 : Format.formatter -> Campaign.t -> unit
(** Test execution time per compiler. *)

val headline : Format.formatter -> Campaign.t -> unit
(** The §5 headline: tests generated / differences / causes. *)

val all : Format.formatter -> Campaign.t -> unit
