(* Rendering of the paper's tables and figures from campaign data.

   - Table 1: concolic execution paths of the add byte-code;
   - Table 2: per-compiler tested instructions / paths / curated /
     differences;
   - Table 3: defect-family summary (root causes, counted once);
   - Figure 5: paths per instruction, grouped by instruction kind;
   - Figure 6: concolic exploration time per instruction kind;
   - Figure 7: test execution time per compiler. *)

let fprintf = Format.fprintf

(* --- Table 1: example paths of the add byte-code --- *)

let table1 ppf () =
  let r =
    Concolic.Explorer.explore
      (Concolic.Path.Bytecode (Bytecodes.Opcode.Arith_special Bytecodes.Opcode.Sel_add))
  in
  fprintf ppf "Table 1: concolic execution paths of the add byte-code@.";
  fprintf ppf "%-18s | %-50s@." "exit" "path";
  fprintf ppf "%s@." (String.make 100 '-');
  List.iter
    (fun (p : Concolic.Path.t) ->
      fprintf ppf "%-18s | %s@."
        (Interpreter.Exit_condition.to_string p.exit_)
        (Symbolic.Path_condition.to_string p.path_condition))
    r.paths

(* --- Table 2 --- *)

type table2_row = {
  compiler : string;
  tested : int;
  paths : int;
  curated : int;
  differences : int;
}

let table2_rows (c : Campaign.t) : table2_row list =
  let rows =
    List.map
      (fun cr ->
        {
          compiler = Jit.Cogits.name cr.Campaign.compiler;
          tested = Campaign.tested_instructions cr;
          paths = Campaign.total_paths cr;
          curated = Campaign.total_curated cr;
          differences = Campaign.total_differences cr;
        })
      c.Campaign.results
  in
  let total =
    {
      compiler = "Total";
      tested = List.fold_left (fun a r -> a + r.tested) 0 rows;
      paths = List.fold_left (fun a r -> a + r.paths) 0 rows;
      curated = List.fold_left (fun a r -> a + r.curated) 0 rows;
      differences = List.fold_left (fun a r -> a + r.differences) 0 rows;
    }
  in
  rows @ [ total ]

let table2 ppf (c : Campaign.t) =
  fprintf ppf
    "Table 2: results running the approach on the four compilers@.";
  fprintf ppf "%-36s %8s %8s %9s %14s@." "Compiler" "#Instr" "#Paths"
    "#Curated" "#Differences";
  fprintf ppf "%s@." (String.make 80 '-');
  List.iter
    (fun r ->
      let pct =
        if r.curated = 0 then 0.0
        else 100.0 *. float_of_int r.differences /. float_of_int r.curated
      in
      fprintf ppf "%-36s %8d %8d %9d %8d (%.2f%%)@." r.compiler r.tested
        r.paths r.curated r.differences pct)
    (table2_rows c)

(* --- Table 3 --- *)

let table3 ppf (c : Campaign.t) =
  fprintf ppf "Table 3: summary of found defects (root causes)@.";
  fprintf ppf "%-36s %8s@." "Family" "#Cases";
  fprintf ppf "%s@." (String.make 46 '-');
  let by_family = Campaign.causes_by_family c in
  List.iter
    (fun (f, n) ->
      fprintf ppf "%-36s %8d@." (Difftest.Difference.family_name f) n)
    by_family;
  fprintf ppf "%-36s %8d@." "Total"
    (List.fold_left (fun a (_, n) -> a + n) 0 by_family)

let causes ppf (c : Campaign.t) =
  fprintf ppf "Root causes (defects counted once, with affected paths):@.";
  List.iter
    (fun (f, cause, paths) ->
      fprintf ppf "  [%-32s] %-55s %3d paths@."
        (Difftest.Difference.family_name f)
        cause paths)
    (Campaign.causes c)

(* --- Translation-validation matrix (pass 5): per-compiler x per-ISA
   verdict counts, with the solver queries spent and the headline
   unknown rate --- *)

let validation_table ppf (c : Campaign.t) =
  fprintf ppf "Translation validation: per-compiler x per-ISA verdicts@.";
  fprintf ppf "%-36s %-8s %7s %8s %8s %9s %8s %8s %8s@." "Compiler" "ISA"
    "Proved" "Refuted" "Missing" "Spurious" "Unknown" "Skipped" "Queries";
  fprintf ppf "%s@." (String.make 108 '-');
  List.iter
    (fun cr ->
      List.iter
        (fun (arch, (v : Campaign.validation_counts)) ->
          fprintf ppf "%-36s %-8s %7d %8d %8d %9d %8d %8d %8d@."
            (Jit.Cogits.name cr.Campaign.compiler)
            (Jit.Codegen.arch_name arch)
            v.proved v.refuted v.missing v.spurious v.unknown v.skipped
            v.queries)
        (Campaign.validation_by_arch cr))
    c.Campaign.results;
  let t = Campaign.validation_totals c in
  fprintf ppf "%s@." (String.make 108 '-');
  fprintf ppf "%-36s %-8s %7d %8d %8d %9d %8d %8d %8d@." "Total" "" t.proved
    t.refuted t.missing t.spurious t.unknown t.skipped t.queries;
  let validated = t.proved + t.refuted + t.spurious + t.unknown in
  if validated > 0 then
    fprintf ppf "Unknown rate: %.1f%% of %d validated path verdicts@."
      (100.0 *. float_of_int t.unknown /. float_of_int validated)
      validated

(* --- Cross-ISA divergence matrix: per-(front-end x ISA-pair) counts
   from the static cross-ISA differ (pair labels in canonical arch
   order; zero everywhere on a pristine configuration) --- *)

let cross_isa_table ppf (c : Campaign.t) =
  match Campaign.cross_isa_divergences c with
  | [] | (_, []) :: _ ->
      fprintf ppf "Cross-ISA divergences: fewer than two ISAs in play@."
  | rows ->
      let pairs = List.map fst (snd (List.hd rows)) in
      fprintf ppf "Cross-ISA static divergences: per-compiler x ISA-pair@.";
      fprintf ppf "%-36s" "Compiler";
      List.iter (fun p -> fprintf ppf " %10s" p) pairs;
      fprintf ppf "@.";
      fprintf ppf "%s@." (String.make (37 + (11 * List.length pairs)) '-');
      List.iter
        (fun (short, counts) ->
          fprintf ppf "%-36s" short;
          List.iter (fun (_, n) -> fprintf ppf " %10d" n) counts;
          fprintf ppf "@.")
        rows

(* --- supervision: per-unit verdict counts under the fault-tolerant
   engine, plus the individual incidents and the chaos schedule --- *)

let pp_robustness_row ppf ~label (c : Exec.Supervise.counts) =
  fprintf ppf "%-36s %6d %9d %8d %10d %12d %8d@." label c.Exec.Supervise.c_ok
    c.c_timed_out c.c_crashed c.c_worker_died c.c_quarantined c.c_retries

let pp_incident ppf (u : Campaign.unit_report) =
  fprintf ppf "%s: %s (attempts %d)%s@." u.ur_verdict u.ur_key u.ur_attempts
    (if u.ur_detail = "" then "" else ": " ^ u.ur_detail)

let supervision_table ppf (s : Campaign.supervised) =
  fprintf ppf "Supervision: unit verdicts under the fault-tolerant engine@.";
  fprintf ppf "%-36s %6s %9s %8s %10s %12s %8s@." "Compiler" "Ok" "TimedOut"
    "Crashed" "WorkerDied" "Quarantined" "Retries";
  fprintf ppf "%s@." (String.make 95 '-');
  List.iter
    (fun (compiler, counts) ->
      pp_robustness_row ppf ~label:(Jit.Cogits.name compiler) counts)
    s.Campaign.sup_by_compiler;
  fprintf ppf "%s@." (String.make 95 '-');
  pp_robustness_row ppf ~label:"Total" s.Campaign.sup_totals;
  (match s.Campaign.sup_process with
  | None -> ()
  | Some p ->
      fprintf ppf
        "process pool: %d workers, %d spawned, %d deaths, %d preempted, %d \
         re-deals, %d garbage frames, %d retired@."
        p.Exec.Procpool.p_workers p.p_spawned p.p_deaths p.p_preempted
        p.p_redeals p.p_garbage p.p_retired);
  if s.Campaign.sup_interrupted then
    fprintf ppf "INTERRUPTED: partial aggregates (unfinished units are \
                 quarantined as \"interrupted\")@.";
  List.iter (pp_incident ppf) (Campaign.sup_incidents s);
  List.iter
    (fun (i, key, kind) -> fprintf ppf "chaos: unit %d (%s) <- %s@." i key kind)
    s.Campaign.sup_chaos

(* --- abstract-interpretation sweep (pass 4): machine-layer counters
   and per-cause finding counts --- *)

let abstract_table ppf (r : Verify.abstract_report) =
  fprintf ppf "Abstract interpretation: machine-layer sweep@.";
  fprintf ppf "%-12s %10s %8s %11s %14s %10s@." "Units" "Programs" "Paths"
    "Truncated" "Cross-checked" "Findings";
  fprintf ppf "%s@." (String.make 70 '-');
  fprintf ppf "%-12d %10d %8d %11d %14d %10d@." r.Verify.ab_units
    r.Verify.ab_programs r.Verify.ab_paths r.Verify.ab_truncated
    r.Verify.ab_crosschecked
    (List.length r.Verify.ab_findings);
  let causes = Verify.abstract_causes r in
  if causes <> [] then begin
    fprintf ppf "Causes:@.";
    List.iter
      (fun (family, cause, n) ->
        fprintf ppf "  [%-28s] %-48s %3d finding%s@."
          (Verify.Finding.family_name family)
          cause n
          (if n = 1 then "" else "s"))
      causes
  end

(* --- mutation kill matrix --- *)

let pp_kill_row ppf (r : Campaign.kill_row) =
  fprintf ppf "%-24s %-9s %6d %7d %9d %9d %9d  %5.1f%%@." r.kr_label
    r.kr_layer r.kr_units r.kr_static r.kr_validate r.kr_difftest
    r.kr_survived
    (100.0 *. Campaign.kill_rate r)

let kill_table ppf (m : Campaign.kill_matrix) =
  fprintf ppf "Mutation kill matrix: which oracle layer killed each mutant@.";
  fprintf ppf "%-24s %-9s %6s %7s %9s %9s %9s  %6s@." "Operator" "Layer"
    "Units" "Static" "Validate" "Difftest" "Survived" "Kill";
  fprintf ppf "%s@." (String.make 90 '-');
  List.iter (pp_kill_row ppf) (Campaign.kills_by_operator m);
  fprintf ppf "%s@." (String.make 90 '-');
  List.iter (pp_kill_row ppf) (Campaign.kills_by_layer m);
  fprintf ppf "%s@." (String.make 90 '-');
  let t = Campaign.kill_totals m in
  pp_kill_row ppf t;
  if m.Campaign.km_pristine then
    fprintf ppf "Pristine gate: %d false kill%s across %d unit%s@."
      (List.length (Campaign.false_kills m))
      (if List.length (Campaign.false_kills m) = 1 then "" else "s")
      t.kr_units
      (if t.kr_units = 1 then "" else "s")
  else
    List.iter
      (fun (o : Campaign.mutant_outcome) ->
        fprintf ppf "survived: %s on %s/%s/%s@." o.mo_op.Jit.Fault.id
          (Jit.Cogits.short_name o.mo_compiler)
          (Concolic.Path.subject_name o.mo_subject)
          (Jit.Codegen.arch_name o.mo_arch))
      (Campaign.surviving_mutants m);
  let r = m.Campaign.km_robustness in
  if
    r.Exec.Supervise.c_timed_out + r.c_crashed + r.c_worker_died
    + r.c_quarantined + r.c_retries
    > 0
  then begin
    fprintf ppf
      "supervision: %d ok, %d timed out, %d crashed, %d worker died, %d \
       quarantined, %d retries@."
      r.c_ok r.c_timed_out r.c_crashed r.c_worker_died r.c_quarantined
      r.c_retries;
    List.iter (pp_incident ppf) m.Campaign.km_incidents
  end;
  if m.Campaign.km_interrupted then
    fprintf ppf "INTERRUPTED: partial kill matrix@."

(* The extracted-vs-curated corpus comparison (ROADMAP item 3): path
   counts, exit-condition mix, and — when a kill comparison was run —
   which operators each corpus kills. *)
let corpus_table ppf ~(curated : Templates.Corpus.coverage)
    ~(extracted : Templates.Corpus.coverage) ~kills =
  fprintf ppf "Corpus coverage: template-extracted vs curated@.";
  fprintf ppf "%-28s %10s %10s@." "Measure" "Curated" "Extracted";
  fprintf ppf "%s@." (String.make 50 '-');
  let row name c e = fprintf ppf "%-28s %10d %10d@." name c e in
  row "subjects" curated.Templates.Corpus.cov_subjects
    extracted.Templates.Corpus.cov_subjects;
  row "paths" curated.Templates.Corpus.cov_paths
    extracted.Templates.Corpus.cov_paths;
  row "distinct path summaries" curated.Templates.Corpus.cov_distinct_paths
    extracted.Templates.Corpus.cov_distinct_paths;
  row "subject fingerprints" curated.Templates.Corpus.cov_fingerprints
    extracted.Templates.Corpus.cov_fingerprints;
  fprintf ppf "Exit conditions (paths per exit):@.";
  let exits =
    List.sort_uniq compare
      (List.map fst curated.Templates.Corpus.cov_exits
      @ List.map fst extracted.Templates.Corpus.cov_exits)
  in
  List.iter
    (fun x ->
      let count cov =
        Option.value ~default:0
          (List.assoc_opt x cov.Templates.Corpus.cov_exits)
      in
      fprintf ppf "  %-26s %10d %10d@." x (count curated) (count extracted))
    exits;
  if kills <> [] then begin
    fprintf ppf "Operator kills (any compiler x ISA):@.";
    List.iter
      (fun (op, on_curated, on_extracted) ->
        fprintf ppf "  %-26s %10s %10s%s@." op
          (if on_curated then "killed" else "-")
          (if on_extracted then "killed" else "-")
          (if on_curated && not on_extracted then "  LOST" else ""))
      kills
  end

(* --- Figures: simple statistics over per-instruction series --- *)

type stats = { n : int; mean : float; median : float; min : float; max : float }

let stats_of = function
  | [] -> { n = 0; mean = 0.; median = 0.; min = 0.; max = 0. }
  | xs ->
      let sorted = List.sort compare xs in
      let n = List.length xs in
      let sum = List.fold_left ( +. ) 0.0 xs in
      {
        n;
        mean = sum /. float_of_int n;
        median = List.nth sorted (n / 2);
        min = List.hd sorted;
        max = List.nth sorted (n - 1);
      }

let pp_stats ppf ~unit s =
  fprintf ppf "n=%d mean=%.3f%s median=%.3f%s min=%.3f%s max=%.3f%s" s.n
    s.mean unit s.median unit s.min unit s.max unit

let instruction_results_of_kind (c : Campaign.t) ~native =
  List.concat_map
    (fun cr ->
      if (cr.Campaign.compiler = Jit.Cogits.Native_method_compiler) = native
      then List.filter (fun r -> not r.Campaign.unsupported) cr.instructions
      else [])
    c.Campaign.results

(* Figure 5: paths per instruction, byte-codes vs native methods. *)
let figure5 ppf (c : Campaign.t) =
  fprintf ppf "Figure 5: paths per instruction (log-scale distribution)@.";
  let series ~native =
    (* byte-code instructions are triplicated across the three compilers;
       take one compiler's view *)
    let rs =
      if native then instruction_results_of_kind c ~native:true
      else
        match
          List.find_opt
            (fun cr -> cr.Campaign.compiler = Jit.Cogits.Simple_stack_cogit)
            c.Campaign.results
        with
        | Some cr ->
            List.filter (fun r -> not r.Campaign.unsupported) cr.instructions
        | None -> []
    in
    List.map (fun r -> float_of_int r.Campaign.paths) rs
  in
  fprintf ppf "  Bytecode:      %a@." (fun ppf -> pp_stats ppf ~unit:"") (stats_of (series ~native:false));
  fprintf ppf "  Native Method: %a@." (fun ppf -> pp_stats ppf ~unit:"") (stats_of (series ~native:true))

(* Figure 6: concolic exploration time per instruction kind. *)
let figure6 ppf (c : Campaign.t) =
  fprintf ppf "Figure 6: concolic execution time per kind of instruction@.";
  let series rs = List.map (fun r -> 1000.0 *. r.Campaign.explore_time) rs in
  let bc =
    match
      List.find_opt
        (fun cr -> cr.Campaign.compiler = Jit.Cogits.Simple_stack_cogit)
        c.Campaign.results
    with
    | Some cr -> List.filter (fun r -> not r.Campaign.unsupported) cr.instructions
    | None -> []
  in
  let nm = instruction_results_of_kind c ~native:true in
  fprintf ppf "  Bytecode:      %a@."
    (fun ppf -> pp_stats ppf ~unit:"ms")
    (stats_of (series bc));
  fprintf ppf "  Native Method: %a@."
    (fun ppf -> pp_stats ppf ~unit:"ms")
    (stats_of (series nm));
  let total rs = List.fold_left (fun a r -> a +. r.Campaign.explore_time) 0.0 rs in
  fprintf ppf "  Totals: bytecode %.2fs, native methods %.2fs@." (total bc)
    (total nm)

(* Figure 7: test execution time per compiler. *)
let figure7 ppf (c : Campaign.t) =
  fprintf ppf "Figure 7: test execution time per compiler@.";
  List.iter
    (fun cr ->
      let rs = List.filter (fun r -> not r.Campaign.unsupported) cr.Campaign.instructions in
      let series = List.map (fun r -> 1000.0 *. r.Campaign.test_time) rs in
      let total = List.fold_left (fun a r -> a +. r.Campaign.test_time) 0.0 rs in
      fprintf ppf "  %-36s %a (total %.2fs)@."
        (Jit.Cogits.name cr.Campaign.compiler)
        (fun ppf -> pp_stats ppf ~unit:"ms")
        (stats_of series) total)
    c.Campaign.results

let headline ppf (c : Campaign.t) =
  let tests =
    List.fold_left (fun a cr -> a + Campaign.total_curated cr) 0 c.Campaign.results
  in
  let diffs =
    List.fold_left (fun a cr -> a + Campaign.total_differences cr) 0 c.Campaign.results
  in
  let causes = List.length (Campaign.causes c) in
  fprintf ppf
    "Headline: generated %d differential tests, found %d differences from %d causes.@."
    tests diffs causes

let all ppf (c : Campaign.t) =
  table2 ppf c;
  fprintf ppf "@.";
  table3 ppf c;
  fprintf ppf "@.";
  causes ppf c;
  fprintf ppf "@.";
  cross_isa_table ppf c;
  fprintf ppf "@.";
  figure5 ppf c;
  fprintf ppf "@.";
  figure6 ppf c;
  fprintf ppf "@.";
  figure7 ppf c;
  fprintf ppf "@.";
  headline ppf c
