(** The public facade of the interpreter-guided differential testing
    library.

    {[
      (* explore one instruction's interpreter paths (§2.3) *)
      let exploration = Vm_testing.explore (`Bytecode add) in

      (* differential-test it against one compiler (§2.4) *)
      let report =
        Vm_testing.test_instruction ~compiler:`Stack_to_register
          (`Bytecode add)
      in

      (* or run the paper's full evaluation (§5) *)
      let campaign = Vm_testing.campaign () in
      Vm_testing.print_tables campaign
    ]} *)

type subject =
  [ `Bytecode of Bytecodes.Opcode.t | `Native of int (* primitive id *) ]

type compiler =
  [ `Native_methods | `Simple | `Stack_to_register | `Register_allocating ]

type arch = [ `X86 | `Arm32 | `Rv32 ]

val to_path_subject : subject -> Concolic.Path.subject
val to_cogit : compiler -> Jit.Cogits.compiler
val to_arch : arch -> Jit.Codegen.arch

val explore :
  ?max_iterations:int ->
  ?defects:Interpreter.Defects.t ->
  subject ->
  Concolic.Explorer.result
(** Concolically explore every execution path of one instruction. *)

val test_instruction :
  ?max_iterations:int ->
  ?defects:Interpreter.Defects.t ->
  ?arches:arch list ->
  compiler:compiler ->
  subject ->
  Campaign.instruction_result
(** Explore and differential-test one instruction against one compiler
    (default: paper defects, all three ISAs). *)

val run_path :
  ?defects:Interpreter.Defects.t ->
  compiler:compiler ->
  arch:arch ->
  Concolic.Path.t ->
  Difftest.Runner.outcome
(** Differential-test a single already-explored path. *)

val campaign :
  ?max_iterations:int ->
  ?defects:Interpreter.Defects.t ->
  ?arches:arch list ->
  ?compilers:compiler list ->
  unit ->
  Campaign.t
(** The full evaluation of §5 (4 compilers × 3 ISAs by default). *)

val print_tables : ?ppf:Format.formatter -> Campaign.t -> unit
(** Render Tables 2-3 and Figures 5-7 plus the cause listing. *)

val all_bytecode_subjects : unit -> subject list
val all_native_subjects : unit -> subject list
val subject_name : subject -> string
