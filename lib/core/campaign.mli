(** Campaign orchestration: the paper's evaluation pipeline (§5).

    A campaign explores every instruction of each compiler's test
    universe with the concolic engine, runs the differential tests on
    each curated path across the requested ISAs, and aggregates the
    per-instruction and per-compiler statistics behind Table 2, Table 3
    and Figures 5-7. *)

type agreement_counts = {
  both_clean : int;
  both_flagged : int;
  static_only : int;
  dynamic_only : int;
}
(** Static-vs-dynamic agreement tallies; one count per path x arch
    verdict (see {!Difftest.Runner.agreement}). *)

type validation_counts = {
  proved : int;
  refuted : int;
  missing : int;
      (** the subset of [refuted] whose witness is an absent template
          ("not compiled"): real divergences, but expected ones — the
          pristine gate checks [refuted - missing] *)
  spurious : int;
  unknown : int;
  skipped : int;
  queries : int;  (** solver queries spent by the validator *)
}
(** Translation-validation tallies; one count per path x arch verdict
    (see {!Difftest.Runner.validation}). *)

val no_validations : validation_counts
val sum_validations : validation_counts -> validation_counts -> validation_counts

type instruction_result = {
  subject : Concolic.Path.subject;
  paths : int;  (** interpreter paths discovered *)
  curated : int;  (** paths the tester could re-create and execute *)
  differences : int;  (** paths differing between engines *)
  unsupported : bool;
  explore_time : float;  (** seconds of concolic exploration (Fig. 6) *)
  test_time : float;  (** seconds running the generated tests (Fig. 7) *)
  diffs : Difftest.Difference.t list;
      (** witnesses deduplicated by root cause
          ({!Difftest.Classify.dedupe_witnesses}); [differences] keeps
          the per-path count *)
  static_findings : Verify.Finding.t list;
      (** the unit's static verdict, deduplicated across paths *)
  agreements : agreement_counts;
  validations : (Jit.Codegen.arch * validation_counts) list;
      (** per-ISA translation-validation tallies; [[]] unless the
          campaign ran with [~validate:true] *)
}

type compiler_result = {
  compiler : Jit.Cogits.compiler;
  instructions : instruction_result list;
}

type t = {
  defects : Interpreter.Defects.t;
  arches : Jit.Codegen.arch list;
  results : compiler_result list;
}

val native_subjects : unit -> Concolic.Path.subject list
(** The 112 native methods (§5.1 experiment 1). *)

val bytecode_subjects : unit -> Concolic.Path.subject list
(** The byte-code set minus the instructions the tester does not support
    (§4.3). *)

val subjects_for : Jit.Cogits.compiler -> Concolic.Path.subject list

(** {1 Test-universe selection}

    [Corpus_extracted] swaps the byte-code compilers' universe for [n]
    template-extracted, verifier-filtered, fingerprint-deduplicated
    subjects ({!Templates.Corpus}); the native compiler always keeps
    the 112 native methods. *)

type corpus_spec = Corpus_curated | Corpus_extracted of { n : int; seed : int }

val corpus_label : corpus_spec -> string
(** ["curated"] or ["extracted:<n>:seed:<s>"] — used in journal
    configuration fingerprints and reports. *)

val curated_universe : unit -> Concolic.Path.subject list
(** [bytecode_subjects () @ native_subjects ()] — the extraction base. *)

val extracted_corpus : ?jobs:int -> seed:int -> n:int -> unit -> Templates.Corpus.t
(** Build (or return the memoized) extracted corpus for [(seed, n)],
    using the curated universe as the template source.  Incremental and
    resumable against an active {!Exec.Store}. *)

val corpus_subjects_for :
  ?jobs:int -> corpus:corpus_spec -> Jit.Cogits.compiler -> Concolic.Path.subject list
(** The compiler's test universe under the given corpus. *)

val test_instruction :
  ?max_iterations:int ->
  ?validate:bool ->
  ?budget:int ref ->
  defects:Interpreter.Defects.t ->
  arches:Jit.Codegen.arch list ->
  compiler:Jit.Cogits.compiler ->
  Concolic.Path.subject ->
  instruction_result
(** Explore one instruction and differential-test all its paths.  A path
    counts as one difference if it differs on any architecture.
    [validate] (default [false]) additionally runs solver-backed
    translation validation (pass 5) on every path x arch; [budget] caps
    its solver queries, shared across calls via the ref. *)

val run_units :
  ?jobs:int ->
  ?max_iterations:int ->
  ?validate:bool ->
  ?budget:int ref ->
  defects:Interpreter.Defects.t ->
  arches:Jit.Codegen.arch list ->
  (Jit.Cogits.compiler * Concolic.Path.subject) list ->
  (Jit.Cogits.compiler * instruction_result) list
(** The parallel fan-out primitive: run each (compiler, subject) unit
    through {!test_instruction}, dealing units to up to [jobs] domains
    (default {!Exec.Pool.default_jobs}; [1] = sequential in the caller).
    Results come back in the input's order whatever the worker count, so
    everything derived from them is byte-identical at any [-j].  Each
    unit runs entirely on one domain (exact per-unit query counts).
    With [budget], the shared ref is decremented racily across domains:
    a few extra queries may slip through before exhaustion, degrading
    some verdicts to Unknown — budgeted parallel runs are capped but not
    exactly reproducible; unbudgeted runs are. *)

val units_for :
  Jit.Cogits.compiler list ->
  (Jit.Cogits.compiler * Concolic.Path.subject) list
(** Every compiler paired with each subject of its test universe, in
    stable (compiler, subject) order. *)

val run_compiler :
  ?jobs:int ->
  ?max_iterations:int ->
  ?validate:bool ->
  ?budget:int ref ->
  defects:Interpreter.Defects.t ->
  arches:Jit.Codegen.arch list ->
  Jit.Cogits.compiler ->
  compiler_result

val run :
  ?jobs:int ->
  ?max_iterations:int ->
  ?validate:bool ->
  ?budget:int ref ->
  ?defects:Interpreter.Defects.t ->
  ?arches:Jit.Codegen.arch list ->
  ?compilers:Jit.Cogits.compiler list ->
  unit ->
  t
(** The full evaluation (defaults: paper defects, both ISAs, all four
    compilers, no translation validation).  All compilers' units fan
    into one {!run_units} pool; the grouped result is independent of
    [jobs]. *)

(** {1 Supervised runs}

    The fault-tolerant engine: same universe and per-unit work as
    {!run}, but every (compiler × subject) unit goes through
    {!Exec.Supervise} — isolated (a crash is a recorded verdict, not a
    dead run), budgeted (the {!Exec.Budget} fuel watchdog turns hangs
    into [Timed_out]), retried with deterministic backoff, quarantined
    behind a per-compiler circuit breaker, optionally journalled for
    checkpoint/resume, and optionally chaos-injected. *)

type unit_report = {
  ur_key : string;
      (** stable unit key: ["compiler|subject"], or
          ["op|compiler|subject|arch"] for mutation units *)
  ur_verdict : string;  (** {!Exec.Supervise.verdict_name} *)
  ur_detail : string;
  ur_attempts : int;
}

type supervised = {
  sup_campaign : t;  (** assembled from the [Ok] units only *)
  sup_units : unit_report list;  (** every unit, stable input order *)
  sup_by_compiler : (Jit.Cogits.compiler * Exec.Supervise.counts) list;
  sup_totals : Exec.Supervise.counts;
  sup_chaos : (int * string * string) list;
      (** injected faults: unit index, unit key, kind name *)
  sup_interrupted : bool;
      (** SIGINT/SIGTERM cut the run short; the aggregates cover the
          units that finished, the rest are [Quarantined "interrupted"] *)
  sup_process : Exec.Procpool.stats option;
      (** pool statistics, [Some] iff the run used [~workers] *)
}

val sup_incidents : supervised -> unit_report list
(** The non-[ok] unit reports, stable order. *)

val unit_key : Jit.Cogits.compiler * Concolic.Path.subject -> string
(** ["compiler|subject"] — the journal and report key of one unit. *)

val run_supervised :
  ?jobs:int ->
  ?workers:int ->
  ?worker_deadline_s:float ->
  ?max_iterations:int ->
  ?validate:bool ->
  ?budget:int ref ->
  ?policy:Exec.Supervise.policy ->
  ?chaos:int * int ->
  ?journal:string ->
  ?journal_sync:bool ->
  ?resume:string ->
  ?defects:Interpreter.Defects.t ->
  ?arches:Jit.Codegen.arch list ->
  ?compilers:Jit.Cogits.compiler list ->
  ?corpus:corpus_spec ->
  ?units:(Jit.Cogits.compiler * Concolic.Path.subject) list ->
  unit ->
  supervised
(** Supervised {!run}.  [corpus] (default {!Corpus_curated}) selects
    the test universe; extracted runs tag the journal configuration, so
    curated and extracted journals never mix.

    [workers] runs the units in that many disposable worker processes
    ({!Exec.Procpool}) instead of in-process domains: a unit crash or
    hang can then at worst kill its own process ([Worker_died] verdicts
    after the shared retry budget), a silent worker is preemptively
    SIGKILLed after [worker_deadline_s] (default 30s) of no frames, and
    results merge by stable unit index so the aggregates stay
    byte-identical at any worker count — and equal to the in-process
    run's.  In workers mode [chaos] draws from
    {!Exec.Chaos.process_kinds} (worker kills, SIGSTOP hangs, pipe
    garbage, spurious exits) and [budget] becomes a per-worker cap
    (each worker gets its own ref of the initial value).
    [journal_sync] fsyncs each journal append so a power-cut-style kill
    resumes byte-identically; the default only [flush]es — an
    OS-buffered tail can be lost to a hard kill, torn lines are still
    detected and skipped on load.

    [units] overrides the
    default universe
    ([units_for compilers]) — the [vmtest validate] subcommand uses it
    for single-instruction runs; compilers absent from [units] simply
    produce empty rows.  [chaos:(seed, faults)] injects that many
    seeded harness faults via {!Exec.Chaos.plan}.  [journal] appends
    completed unit verdicts to an append-only JSONL file ([Ok]
    payloads are marshalled {!instruction_result}s); [resume] preloads
    such a journal and skips its finished units — the aggregate result
    is byte-identical to a fresh run's, though the journal file itself
    is written in completion order.  [journal] and [resume] may name
    the same file to continue a killed run in place.  Verdict counts
    and unit reports are byte-identical at any [jobs]; wall-clock
    deadlines ([policy.deadline_s]) are the one knob that can break
    that, which is why the default policy only sets fuel. *)

(** {1 Aggregations} *)

val tested_instructions : compiler_result -> int
val total_paths : compiler_result -> int
val total_curated : compiler_result -> int
val total_differences : compiler_result -> int
val all_diffs : t -> Difftest.Difference.t list

val causes : t -> (Difftest.Difference.family * string * int) list
(** Root causes with the number of retained witnesses (after
    per-compiler x ISA dedupe), counted once per cause (paper §5.3),
    sorted. *)

val causes_by_family : t -> (Difftest.Difference.family * int) list
(** Table 3: cause counts per defect family. *)

(** {1 Static-verifier aggregations} *)

val agreement_totals : t -> agreement_counts
(** Campaign-wide static-vs-dynamic agreement counts. *)

val all_static_findings : t -> Verify.Finding.t list

val static_causes : t -> (Verify.Finding.family * string * int) list
(** Static root causes with finding counts, counted once per cause,
    sorted — the zero-execution analogue of {!causes}. *)

val static_pass_counts : t -> (string * int) list
(** Finding counts per static pass ({!Verify.Finding.pass_name}), sorted
    by pass name — how much of the static oracle surface each pass
    (bytecode / ir / machine / abstract / differ) contributes. *)

val arch_pair_labels : Jit.Codegen.arch list -> string list
(** Unordered ISA pair labels ("a+b") in the stable order induced by the
    input list: for [x86; arm32; rv32] that is
    [["x86+arm32"; "x86+rv32"; "arm32+rv32"]]. *)

val cross_isa_divergences : t -> (string * (string * int) list) list
(** Per-(front-end x ISA-pair) static cross-ISA divergence counts: one
    row per compiler, one column per pair label from
    {!arch_pair_labels}, counting findings whose cause starts with
    ["cross-isa"].  Rows include explicit zero cells so the table shape
    is stable across campaigns. *)

(** {1 Translation-validation aggregations} *)

val validation_by_arch :
  compiler_result -> (Jit.Codegen.arch * validation_counts) list
(** Per-ISA validation tallies for one compiler, summed over its
    instructions — the rows of the [vmtest validate] matrix. *)

val validation_totals_compiler : compiler_result -> validation_counts
val validation_totals : t -> validation_counts
(** Campaign-wide validation tallies. *)

(** {1 Mutation kill matrix}

    Oracle-strength evaluation: every scheduled unit is one
    (operator x compiler x subject x ISA) mutant, run through the full
    oracle stack pristine and mutated; the first layer whose verdict
    moves records the kill. *)

type kill =
  | Killed_static  (** the static verifier suite noticed first *)
  | Killed_validate  (** solver-backed translation validation did *)
  | Killed_difftest  (** only the differential run did *)
  | Survived  (** no oracle layer noticed the planted fault *)

val kill_name : kill -> string

type oracle_snapshot = {
  o_static : string list;
  o_validation : (int * int * int * int * int * int) list;
  o_differences : int;
  o_diff_causes : (string * string) list;
}
(** One unit's oracle verdicts reduced to comparable form — no query
    counts or times, which vary with cache warmth rather than with the
    compiled code. *)

val snapshot_of : instruction_result -> oracle_snapshot

val decide : baseline:oracle_snapshot -> mutant:oracle_snapshot -> kill
(** Kill attribution in oracle order: static, then validate, then
    difftest; equal snapshots survive. *)

val reset_kill_cache : unit -> unit
(** Drop the memoized pristine baselines (test hygiene). *)

type mutant_outcome = {
  mo_op : Mutate.operator;
  mo_compiler : Jit.Cogits.compiler;
  mo_subject : Concolic.Path.subject;
  mo_arch : Jit.Codegen.arch;
  mo_fired : bool;  (** did the planted rewrite actually apply? *)
  mo_kill : kill;
}

type kill_matrix = {
  km_defects : Interpreter.Defects.t;
  km_pristine : bool;
  km_outcomes : mutant_outcome list;
      (** units that completed [Ok]; crashed/timed-out/quarantined
          units are counted in [km_robustness] and listed in
          [km_incidents] instead *)
  km_robustness : Exec.Supervise.counts;
  km_incidents : unit_report list;
  km_interrupted : bool;  (** SIGINT/SIGTERM cut the run short *)
  km_process : Exec.Procpool.stats option;
      (** pool statistics, [Some] iff the run used [~workers] *)
}

val kill_of_name : string -> kill
(** Inverse of {!kill_name}; raises [Failure] on unknown names. *)

val kill_matrix :
  ?jobs:int ->
  ?workers:int ->
  ?worker_deadline_s:float ->
  ?max_iterations:int ->
  ?per_operator:int ->
  ?gen:int ->
  ?seed:int ->
  ?pristine:bool ->
  ?defects:Interpreter.Defects.t ->
  ?arches:Jit.Codegen.arch list ->
  ?operators:Mutate.operator list ->
  ?corpus:corpus_spec ->
  ?policy:Exec.Supervise.policy ->
  ?journal:string ->
  ?journal_sync:bool ->
  ?resume:string ->
  unit ->
  kill_matrix
(** Run the kill-matrix campaign.  Per (operator, compiler), the first
    [per_operator] (default 2) subjects whose fault fires and whose
    exploration is supported are scheduled, drawn from the curated
    universe, handcrafted register-pressure sequences, and [gen]
    (default 6) qcheck-generated methods from [seed]; each selected
    subject runs on every ISA in [arches].  With the default curated
    [corpus], a cell that comes up short falls back to a small
    template-extracted corpus (built lazily from the same [seed]);
    with [Corpus_extracted] the byte-code compilers draw exclusively
    from the extracted corpus (natives keep their universe) and the
    journal configuration is tagged with the corpus label.  Defaults to the pristine
    interpreter configuration so every kill is attributable to the
    planted fault.  [pristine] replaces every operator with the inert
    {!Mutate.pristine} mutant; all units must come back {!Survived}
    (the zero-false-kill gate, see {!false_kills}).  Units run under
    {!Exec.Supervise} with [policy] (grouped per compiler for the
    circuit breaker); [journal]/[resume] checkpoint and skip units by
    their ["op|compiler|subject|arch"] key, storing the decided
    (fired, kill) pair.  The outcome list is identical at any
    [jobs]. *)

type kill_row = {
  kr_label : string;
  kr_layer : string;
  kr_units : int;
  kr_static : int;
  kr_validate : int;
  kr_difftest : int;
  kr_survived : int;
}

val kill_rate : kill_row -> float
(** Killed units over scheduled units; [0.] for an empty row. *)

val kills_by_operator : kill_matrix -> kill_row list
(** One row per operator in {!Mutate.all} order (unscheduled operators
    omitted). *)

val kills_by_layer : kill_matrix -> kill_row list
val kill_totals : kill_matrix -> kill_row
val surviving_mutants : kill_matrix -> mutant_outcome list

val false_kills : kill_matrix -> mutant_outcome list
(** Non-survived outcomes of a [~pristine:true] run — false positives
    of the oracle stack itself.  Always [[]] for a real mutation run. *)

(** {1 Worker-process entry point} *)

val worker_main : unit -> unit
(** The body of the hidden [worker] argv mode every binary intercepts
    before its real CLI.  Speaks the {!Exec.Unit_wire} protocol on
    stdin/stdout via {!Exec.Procpool.worker_main}: receives the
    marshalled run configuration in the Hello frame (task kind,
    defects, arches, policy, per-worker budget, chaos recipe, shared
    {!Exec.Store} root), then executes dealt campaign or mutation units
    with exactly the in-process retry/backoff/attempt accounting.
    Never returns. *)
